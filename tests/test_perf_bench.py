"""Unit tests for the ``repro.perf`` microbenchmark harness."""

import copy
import json

import pytest

# BenchTiming is aliased so pytest's Bench* collection pattern skips it.
from repro.perf.bench import BenchTiming as Timing
from repro.perf.bench import (
    PerfError,
    compare,
    resolve_workloads,
    run_bench,
)
from repro.perf.document import (
    DOCUMENT_NAME,
    SCHEMA,
    assert_json_clean,
    dumps_document,
    load_document,
    render_text,
    report_to_document,
    validate_document,
    write_document,
)
from repro.perf.workloads import CALIBRATION, WORKLOADS

#: Cheap workloads for harness tests (no campaign simulation in prepare).
QUICK = ["frame_codec", "mutation_batch"]


@pytest.fixture(scope="module")
def quick_report():
    return run_bench(names=QUICK, fast=True, repeats=2)


@pytest.fixture(scope="module")
def quick_document(quick_report):
    return report_to_document(quick_report)


class TestResolveWorkloads:
    def test_default_is_every_workload(self):
        assert resolve_workloads(None) == list(WORKLOADS)

    def test_subset_keeps_registry_order_and_adds_calibration(self):
        resolved = resolve_workloads(["mutation_batch", "frame_codec"])
        assert resolved[0] == CALIBRATION
        assert resolved[1:] == ["frame_codec", "mutation_batch"]

    def test_unknown_workload_rejected(self):
        with pytest.raises(PerfError, match="unknown workload"):
            resolve_workloads(["frame_codec", "no_such_thing"])


class TestRunBench:
    def test_rejects_zero_repeats(self):
        with pytest.raises(PerfError, match="repeats"):
            run_bench(names=QUICK, fast=True, repeats=0)

    def test_timings_cover_selection_plus_calibration(self, quick_report):
        assert [t.name for t in quick_report.timings] == [CALIBRATION] + QUICK
        for timing in quick_report.timings:
            assert timing.ops > 0
            assert 0 < timing.best_ns <= timing.mean_ns
            assert timing.reps == 2

    def test_checksums_reproduce_across_harness_runs(self, quick_report):
        again = run_bench(names=QUICK, fast=True, repeats=1)
        for timing in quick_report.timings:
            twin = again.timing(timing.name)
            assert (twin.ops, twin.checksum) == (timing.ops, timing.checksum)

    def test_ratios_are_calibration_normalised(self, quick_report):
        ratios = quick_report.ratios()
        assert ratios[CALIBRATION] == pytest.approx(1.0)
        assert all(value > 0.0 for value in ratios.values())

    def test_metrics_side_channel_recorded(self, quick_report):
        assert quick_report.snapshot.counters.get("mutation.generated", 0) > 0


class TestDocument:
    def test_envelope_and_cleanliness(self, quick_document):
        validate_document(quick_document)
        assert quick_document["schema"] == SCHEMA
        assert set(quick_document["results"]) == {CALIBRATION, *QUICK}
        assert quick_document["meta"]["fast"] is True

    def test_canonical_serialisation_round_trips(self, quick_document, tmp_path):
        path = tmp_path / DOCUMENT_NAME
        write_document(quick_document, str(path))
        loaded = load_document(str(path))
        assert loaded == json.loads(dumps_document(quick_document))
        assert dumps_document(loaded) == dumps_document(quick_document)

    def test_render_text_lists_every_workload(self, quick_document):
        rendered = render_text(quick_document)
        for name in (CALIBRATION, *QUICK):
            assert name in rendered

    def test_validate_rejects_foreign_schema(self, quick_document):
        doc = copy.deepcopy(quick_document)
        doc["schema"] = "zcover-obs-metrics"
        with pytest.raises(PerfError, match="not a zcover-perf-bench"):
            validate_document(doc)

    def test_validate_rejects_missing_fields(self, quick_document):
        doc = copy.deepcopy(quick_document)
        del doc["results"]["frame_codec"]["checksum"]
        with pytest.raises(PerfError, match="missing"):
            validate_document(doc)


class TestJsonClean:
    def test_accepts_plain_json_tree(self):
        assert_json_clean({"a": [1, 2.5, "x", True, None], "b": {"c": 0}})

    def test_rejects_tuples(self):
        with pytest.raises(PerfError, match="tuple"):
            assert_json_clean({"a": (1, 2)})

    def test_rejects_non_string_keys(self):
        with pytest.raises(PerfError, match="non-string key"):
            assert_json_clean({1: "x"})

    def test_rejects_arbitrary_objects(self):
        with pytest.raises(PerfError, match="not JSON-clean"):
            assert_json_clean({"a": object()})


class TestCompareGate:
    def test_identical_documents_have_no_regressions(self, quick_document):
        assert compare(quick_document, quick_document) == []

    def test_slowdown_beyond_tolerance_flagged(self, quick_document):
        slower = copy.deepcopy(quick_document)
        entry = slower["results"]["frame_codec"]
        entry["ratio_to_calibration"] = entry["ratio_to_calibration"] * 2.0
        regressions = compare(slower, quick_document, tolerance=0.25)
        assert [r.name for r in regressions] == ["frame_codec"]
        assert regressions[0].kind == "slowdown"

    def test_slowdown_within_tolerance_passes(self, quick_document):
        slower = copy.deepcopy(quick_document)
        entry = slower["results"]["frame_codec"]
        entry["ratio_to_calibration"] = entry["ratio_to_calibration"] * 1.2
        assert compare(slower, quick_document, tolerance=0.25) == []

    def test_checksum_drift_flagged(self, quick_document):
        drifted = copy.deepcopy(quick_document)
        drifted["results"]["mutation_batch"]["checksum"] += 1
        regressions = compare(drifted, quick_document)
        assert [(r.name, r.kind) for r in regressions] == [("mutation_batch", "checksum")]

    def test_missing_workload_flagged(self, quick_document):
        partial = copy.deepcopy(quick_document)
        del partial["results"]["mutation_batch"]
        regressions = compare(partial, quick_document)
        assert [(r.name, r.kind) for r in regressions] == [("mutation_batch", "ops")]

    def test_mode_mismatch_short_circuits(self, quick_document):
        full = copy.deepcopy(quick_document)
        full["meta"]["fast"] = False
        regressions = compare(full, quick_document)
        assert len(regressions) == 1
        assert regressions[0].name == "*"
        assert "mode mismatch" in regressions[0].detail

    def test_calibration_never_flagged(self, quick_document):
        slower = copy.deepcopy(quick_document)
        entry = slower["results"][CALIBRATION]
        entry["ratio_to_calibration"] = 99.0
        assert compare(slower, quick_document) == []


class TestBenchTiming:
    def test_per_op_and_rate_derivations(self):
        timing = Timing(
            name="x", ops=1000, reps=3, best_ns=2_000_000, mean_ns=2_500_000,
            checksum=7,
        )
        assert timing.ns_per_op == pytest.approx(2000.0)
        assert timing.ops_per_sec == pytest.approx(500_000.0)
