"""Tests for report rendering and the CLI."""

import pytest

from repro.analysis.report import (
    FIGURE5_CLASS_IDS,
    figure5_series,
    render_figure5,
    render_figure12,
    render_table,
    render_table2,
    render_table3,
    render_table4,
    render_table6,
)
from repro.cli import build_parser, main
from repro.core.campaign import Mode, run_campaign
from repro.core.properties import ControllerProperties


class TestGenericRenderer:
    def test_aligns_columns(self):
        table = render_table(("A", "BB"), [("1", "2"), ("333", "4")])
        lines = table.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_title_first(self):
        table = render_table(("A",), [("1",)], title="My Table")
        assert table.splitlines()[0] == "My Table"


class TestStaticTables:
    def test_table2_lists_nine_devices(self):
        table = render_table2()
        for idx in ("D1", "D5", "D8", "D9"):
            assert idx in table
        assert "ZooZ" in table and "Schlage" in table

    def test_table3_lists_fifteen_bugs_and_cves(self):
        table = render_table3()
        assert "CVE-2024-50929" in table
        assert "CVE-2023-6533" in table
        assert table.count("0x01") >= 7
        assert "Infinite" in table and "68 sec" in table and "4 min" in table

    def test_table3_with_measurements(self):
        table = render_table3({7: ("69 sec", 123.0, 456)})
        assert "t=123s pkt=456" in table

    def test_table4_formats_properties(self):
        props = ControllerProperties(
            home_id=0xE7DE3F3D,
            controller_node_id=1,
            listed_cmdcls=tuple(range(0x20, 0x31)),
            validated_unknown=tuple(range(0x40, 0x5A)),
            proprietary=(0x01, 0x02),
        )
        table = render_table4({"D1": props})
        assert "E7DE3F3D" in table
        assert "17 CMDCLs" in table
        assert "28 CMDCLs" in table


class TestFigure5:
    def test_series_matches_paper(self, full_registry):
        counts = [c for _, c in figure5_series(full_registry)]
        assert counts == [23, 15, 11, 10, 8, 7, 6, 6, 5, 4, 3, 2, 2, 1, 1, 0]

    def test_sixteen_classes_selected(self):
        assert len(FIGURE5_CLASS_IDS) == 16

    def test_render_contains_bars(self, full_registry):
        chart = render_figure5(full_registry)
        assert "#" * 23 in chart
        assert "NETWORK_MANAGEMENT_INCLUSION" in chart


class TestFigure12AndTable6:
    @pytest.fixture(scope="class")
    def short_campaign(self):
        return run_campaign("D1", Mode.FULL, duration=600.0, seed=0)

    def test_figure12_marks_discoveries(self, short_campaign):
        rendered = render_figure12(short_campaign)
        assert "X bug#" in rendered
        assert "packets" in rendered

    def test_table6_renders_all_modes(self, short_campaign):
        table = render_table6({Mode.FULL: short_campaign})
        assert "ZCover full" in table
        assert "ZCover beta" in table  # rendered with '-' placeholder
        assert str(short_campaign.unique_vulnerabilities) in table


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        for argv in (
            ["scan"],
            ["discover", "--device", "D3"],
            ["fuzz", "--hours", "0.1"],
            ["ablation"],
            ["compare", "--devices", "D1"],
            ["table", "--which", "2"],
            ["figure", "--which", "5"],
        ):
            assert parser.parse_args(argv) is not None

    def test_invalid_device_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["scan", "--device", "D8"])

    def test_scan_smoke(self, capsys):
        assert main(["scan", "--device", "D1"]) == 0
        out = capsys.readouterr().out
        assert "E7DE3F3D" in out
        assert "listed CMDCLs (17)" in out

    def test_discover_smoke(self, capsys):
        assert main(["discover", "--device", "D3"]) == 0
        out = capsys.readouterr().out
        assert "unknown CMDCLs : 30" in out

    def test_fuzz_smoke(self, capsys, tmp_path):
        log_path = tmp_path / "bugs.jsonl"
        assert main(["fuzz", "--hours", "0.05", "--log", str(log_path)]) == 0
        out = capsys.readouterr().out
        assert "packets sent" in out
        assert log_path.exists()

    def test_fuzz_json_export(self, capsys, tmp_path):
        import json

        json_path = tmp_path / "campaign.json"
        assert main(["fuzz", "--hours", "0.05", "--json", str(json_path)]) == 0
        data = json.loads(json_path.read_text())
        assert data["device"] == "D1"
        assert data["fingerprint"]["home_id"] == "E7DE3F3D"

    def test_table_smoke(self, capsys):
        assert main(["table", "--which", "3"]) == 0
        assert "CVE-2024-50929" in capsys.readouterr().out

    def test_figure5_smoke(self, capsys):
        assert main(["figure", "--which", "5"]) == 0
        assert "command distribution" in capsys.readouterr().out

    def test_sniff_and_replay_smoke(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(["sniff", "--seconds", "60", "--out", str(trace), "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "saved" in out and "E7DE3F3D" in out
        assert main(["replay", str(trace), "--limit", "3"]) == 0
        assert "E7DE3F3D" in capsys.readouterr().out

    def test_triage_smoke(self, capsys, tmp_path):
        log = tmp_path / "bugs.jsonl"
        main(["fuzz", "--hours", "0.05", "--log", str(log)])
        capsys.readouterr()
        assert main(["triage", "--log", str(log)]) == 0
        assert "Triage report" in capsys.readouterr().out

    def test_trials_smoke(self, capsys):
        assert main(["trials", "--trials", "2", "--hours", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "trials of" in out and "found in every trial" in out

    def test_ids_smoke(self, capsys):
        assert main(["ids", "--device", "D1", "--train-seconds", "3600"]) == 0
        out = capsys.readouterr().out
        assert "trained on" in out
        assert "detected 4/4" in out

    def test_report_smoke(self, capsys, tmp_path):
        report = tmp_path / "report.md"
        svg = tmp_path / "fig.svg"
        assert main([
            "report", "--hours", "0.1", "--out", str(report), "--svg", str(svg)
        ]) == 0
        assert report.exists() and "ZCover campaign report" in report.read_text()
        assert svg.exists() and svg.read_text().startswith("<svg")
