"""Tests for the PHY bit-level signal codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RadioError
from repro.radio.signal import (
    DEFAULT_PREAMBLE_LENGTH,
    PREAMBLE_BYTE,
    SOF_BYTE,
    airtime_seconds,
    bits_to_bytes,
    bytes_to_bits,
    corrupt_bits,
    decode_phy,
    encode_phy,
    manchester_decode,
    manchester_encode,
)


class TestBitPacking:
    def test_bytes_to_bits_msb_first(self):
        assert bytes_to_bits(b"\x80") == [1, 0, 0, 0, 0, 0, 0, 0]
        assert bytes_to_bits(b"\x01") == [0, 0, 0, 0, 0, 0, 0, 1]

    def test_roundtrip(self):
        data = b"\xde\xad\xbe\xef"
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_unaligned_rejected(self):
        with pytest.raises(RadioError):
            bits_to_bytes([1, 0, 1])

    @given(st.binary(max_size=64))
    def test_roundtrip_property(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data


class TestManchester:
    def test_encoding_rules(self):
        assert manchester_encode([0]) == [0, 1]
        assert manchester_encode([1]) == [1, 0]

    def test_roundtrip(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        assert manchester_decode(manchester_encode(bits)) == bits

    def test_invalid_pair_rejected(self):
        with pytest.raises(RadioError):
            manchester_decode([1, 1])

    def test_odd_stream_rejected(self):
        with pytest.raises(RadioError):
            manchester_decode([1, 0, 1])

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=64))
    def test_roundtrip_property(self, bits):
        assert manchester_decode(manchester_encode(bits)) == bits


class TestPhyCodec:
    FRAME = b"\xe7\xde\x3f\x3d\x02\x41\x00\x0d\x01\x20\x02\x99"

    def test_r3_roundtrip(self):
        bits = encode_phy(self.FRAME, rate_kbaud=100.0)
        assert decode_phy(bits, rate_kbaud=100.0) == self.FRAME

    def test_r1_manchester_roundtrip(self):
        bits = encode_phy(self.FRAME, rate_kbaud=9.6)
        assert decode_phy(bits, rate_kbaud=9.6) == self.FRAME

    def test_preamble_present(self):
        bits = encode_phy(self.FRAME, rate_kbaud=100.0)
        head = bits_to_bytes(bits[: (DEFAULT_PREAMBLE_LENGTH + 1) * 8])
        assert head == bytes([PREAMBLE_BYTE] * DEFAULT_PREAMBLE_LENGTH + [SOF_BYTE])

    def test_leading_noise_tolerated(self):
        bits = encode_phy(self.FRAME, rate_kbaud=100.0)
        noisy = [1, 1, 0, 1, 0, 0, 1] + bits
        assert decode_phy(noisy, rate_kbaud=100.0) == self.FRAME

    def test_no_sof_raises(self):
        with pytest.raises(RadioError):
            decode_phy([0, 1] * 64, rate_kbaud=100.0)

    def test_custom_preamble_length(self):
        bits = encode_phy(self.FRAME, rate_kbaud=100.0, preamble_length=4)
        assert decode_phy(bits, rate_kbaud=100.0) == self.FRAME

    def test_zero_preamble_rejected(self):
        with pytest.raises(RadioError):
            encode_phy(self.FRAME, rate_kbaud=100.0, preamble_length=0)

    def test_corruption_in_payload_changes_bytes(self):
        bits = encode_phy(self.FRAME, rate_kbaud=100.0)
        payload_start = (DEFAULT_PREAMBLE_LENGTH + 1) * 8
        corrupted = corrupt_bits(bits, (payload_start + 3,))
        decoded = decode_phy(corrupted, rate_kbaud=100.0)
        assert decoded != self.FRAME

    def test_corrupt_bits_out_of_range_ignored(self):
        bits = [0, 1, 0]
        assert corrupt_bits(bits, (99,)) == bits

    @given(st.binary(min_size=1, max_size=48))
    @settings(max_examples=30)
    def test_roundtrip_property_both_rates(self, frame):
        for rate in (9.6, 100.0):
            assert decode_phy(encode_phy(frame, rate), rate) == frame


class TestAirtime:
    def test_r3_faster_than_r1(self):
        frame = b"\x00" * 20
        assert airtime_seconds(frame, 100.0) < airtime_seconds(frame, 9.6)

    def test_manchester_doubles_data_symbols(self):
        frame = b"\x00" * 10
        overhead_bits = (DEFAULT_PREAMBLE_LENGTH + 1) * 8
        r1 = airtime_seconds(frame, 9.6)
        assert r1 == pytest.approx((overhead_bits + 160) / 9600.0)

    def test_scales_with_length(self):
        assert airtime_seconds(b"\x00" * 40, 100.0) > airtime_seconds(b"\x00" * 10, 100.0)

    def test_typical_frame_under_5ms_at_r3(self):
        assert airtime_seconds(b"\x00" * 13, 100.0) < 0.005
