"""Failure injection: the framework keeps working when the world breaks."""

import random

import pytest

from repro.core.buglog import BugLog
from repro.core.campaign import Mode, run_campaign
from repro.core.fuzzer import FuzzerConfig, FuzzingEngine, psm_streams
from repro.core.mutation import PositionSensitiveMutator
from repro.core.tester import PacketTester
from repro.radio.medium import RadioMedium
from repro.radio.clock import SimClock
from repro.simulator.testbed import build_sut
from repro.zwave.registry import load_full_registry


class TestLossyLinks:
    def test_fuzzing_survives_a_marginal_link(self):
        """At 85 m most frames drop; the engine must not wedge or crash.

        Lost pings read as hangs, so the engine power-cycles a healthy
        controller now and then — wasteful but safe, exactly what the
        paper's operator would see with a badly placed antenna.
        """
        sut = build_sut("D1", seed=13, attacker_distance_m=85.0)
        engine = FuzzingEngine(sut, FuzzerConfig())
        mutator = PositionSensitiveMutator(load_full_registry(), random.Random(13))
        result = engine.run(psm_streams([0x20, 0x25], mutator, 30.0, False), 120.0)
        assert result.packets_sent > 0
        assert not sut.controller.hung

    def test_campaign_on_the_far_edge_still_finds_bugs(self):
        sut_distance = 60.0  # lossy but workable
        result = run_campaign(
            "D1", Mode.FULL, duration=900.0, seed=13,
        )
        assert result.unique_vulnerabilities >= 5


class TestPowerFailures:
    def test_controller_power_cycle_mid_run(self):
        sut = build_sut("D1", seed=14, traffic=False)
        engine = FuzzingEngine(sut, FuzzerConfig())
        mutator = PositionSensitiveMutator(load_full_registry(), random.Random(14))

        # Schedule a blackout 20 simulated seconds in.
        sut.clock.schedule(20.0, lambda: sut.controller.set_power(False))
        sut.clock.schedule(40.0, lambda: sut.controller.set_power(True))
        result = engine.run(psm_streams([0x20], mutator, 120.0, True), 90.0)
        # The outage reads as unresponsiveness; the engine recovers and
        # finishes the run.
        assert result.duration >= 89.0
        assert sut.controller.powered

    def test_host_crash_storm(self):
        """Repeated host crashes never stall the engine."""
        sut = build_sut("D1", seed=15, traffic=False)
        engine = FuzzingEngine(sut, FuzzerConfig())
        mutator = PositionSensitiveMutator(load_full_registry(), random.Random(15))
        result = engine.run(psm_streams([0x9F], mutator, 60.0, True), 300.0)
        crashes = [d for d in result.detections if d.observed == "host_crash"]
        assert crashes
        assert sut.host.responsive  # restarted after the last one


class TestCorruptInputs:
    def test_bug_log_with_corrupt_line(self, tmp_path):
        path = tmp_path / "bugs.jsonl"
        path.write_text('{"timestamp": 1.0, "packet_no": 1, "cmdcl": 90, '
                        '"cmd": 1, "payload_hex": "5a01", "observed": "hang"}\n')
        log = BugLog.load(path)
        assert len(log) == 1
        path.write_text(path.read_text() + "not json\n")
        with pytest.raises(Exception):
            BugLog.load(path)

    def test_packet_tester_on_garbage(self):
        tester = PacketTester("D1", seed=0)
        assert tester.verify_payload(b"\xff") is None
        assert tester.verify_payload(b"") is None or True  # must not raise

    def test_verify_payload_that_kills_the_radio_path(self):
        # A payload that is pure padding still replays cleanly.
        tester = PacketTester("D1", seed=0)
        assert tester.verify_payload(b"\x00" * 40) is None


class TestCongestedMedium:
    def test_many_endpoints_share_the_channel(self):
        clock = SimClock()
        medium = RadioMedium(clock, random.Random(5))
        received = {"count": 0}

        def make_callback(name):
            def callback(reception):
                received["count"] += 1

            return callback

        from repro.zwave.constants import Region

        for i in range(50):
            medium.attach(f"node-{i}", (float(i % 7), float(i // 7)), Region.US, make_callback(i))
        from repro.zwave.frame import make_nop

        for i in range(20):
            medium.transmit(f"node-{i}", make_nop(0x1234, 1, 2).encode(), 100.0)
        clock.advance(5.0)
        # Every transmission reaches the other 49 endpoints.
        assert received["count"] == 20 * 49
