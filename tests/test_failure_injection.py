"""Failure injection: the framework keeps working when the world breaks.

Faults are declared as :mod:`repro.faults` plans, not conjured from
magic distances or monkeypatched internals.  The resilience matrix at
the bottom is the core guarantee: for every fault family, a campaign
series finishes (degraded or with surfaced failures, never wedged) and
its merged metrics are byte-identical between the serial and the
sharded executor.
"""

import random

import pytest

from repro.core.buglog import BugLog
from repro.core.campaign import Mode, run_campaign
from repro.core.fuzzer import FuzzerConfig, FuzzingEngine, psm_streams
from repro.core.mutation import PositionSensitiveMutator
from repro.core.parallel import parallel_supported
from repro.core.tester import PacketTester
from repro.core.trials import run_trials
from repro.faults import (
    FaultPlan,
    FaultPlanner,
    FaultSpec,
    MediumFaultInjector,
    flaky_controller_plan,
    lossy_link_plan,
)
from repro.faults.report import build_chaos_document, dumps_chaos_document
from repro.radio.medium import RadioMedium
from repro.radio.clock import SimClock
from repro.simulator.testbed import build_sut
from repro.zwave.registry import load_full_registry


class TestLossyLinks:
    def test_fuzzing_survives_a_marginal_link(self):
        """Under a lossy-link plan most frames drop; the engine must not
        wedge or crash.

        Lost pings read as hangs, so the engine power-cycles a healthy
        controller now and then — wasteful but safe, exactly what the
        paper's operator would see with a badly placed antenna.
        """
        schedule = FaultPlanner(lossy_link_plan(0.6, 0.2)).compile(13)
        sut = build_sut("D1", seed=13)
        sut.medium.fault_injector = MediumFaultInjector(
            schedule.medium_specs, schedule.medium_rng()
        )
        engine = FuzzingEngine(sut, FuzzerConfig())
        mutator = PositionSensitiveMutator(load_full_registry(), random.Random(13))
        result = engine.run(psm_streams([0x20, 0x25], mutator, 30.0, False), 120.0)
        assert result.packets_sent > 0
        assert not sut.controller.hung
        assert sut.medium.fault_injector.injected > 0

    def test_campaign_on_the_far_edge_still_finds_bugs(self):
        # The marginal link is a fault plan now, not a magic attacker
        # distance — and the campaign proves the faults actually applied.
        plan = lossy_link_plan(drop_rate=0.25, corrupt_rate=0.05)
        result = run_campaign(
            "D1", Mode.FULL, duration=900.0, seed=13, fault_plan=plan
        )
        assert result.metrics.counters["faults.injected.medium.drop"] > 0
        assert result.metrics.counters["faults.injected.medium.corrupt"] > 0
        assert result.unique_vulnerabilities >= 5


class TestPowerFailures:
    def test_controller_power_cycle_mid_run(self):
        sut = build_sut("D1", seed=14, traffic=False)
        engine = FuzzingEngine(sut, FuzzerConfig())
        mutator = PositionSensitiveMutator(load_full_registry(), random.Random(14))

        # Schedule a blackout 20 simulated seconds in.
        sut.clock.schedule(20.0, lambda: sut.controller.set_power(False))
        sut.clock.schedule(40.0, lambda: sut.controller.set_power(True))
        result = engine.run(psm_streams([0x20], mutator, 120.0, True), 90.0)
        # The outage reads as unresponsiveness; the engine recovers and
        # finishes the run.
        assert result.duration >= 89.0
        assert sut.controller.powered

    def test_host_crash_storm(self):
        """Repeated host crashes never stall the engine."""
        sut = build_sut("D1", seed=15, traffic=False)
        engine = FuzzingEngine(sut, FuzzerConfig())
        mutator = PositionSensitiveMutator(load_full_registry(), random.Random(15))
        result = engine.run(psm_streams([0x9F], mutator, 60.0, True), 300.0)
        crashes = [d for d in result.detections if d.observed == "host_crash"]
        assert crashes
        assert sut.host.responsive  # restarted after the last one


class TestCorruptInputs:
    def test_bug_log_with_corrupt_line(self, tmp_path):
        path = tmp_path / "bugs.jsonl"
        path.write_text('{"timestamp": 1.0, "packet_no": 1, "cmdcl": 90, '
                        '"cmd": 1, "payload_hex": "5a01", "observed": "hang"}\n')
        log = BugLog.load(path)
        assert len(log) == 1
        path.write_text(path.read_text() + "not json\n")
        with pytest.raises(Exception):
            BugLog.load(path)

    def test_packet_tester_on_garbage(self):
        tester = PacketTester("D1", seed=0)
        assert tester.verify_payload(b"\xff") is None
        assert tester.verify_payload(b"") is None or True  # must not raise

    def test_verify_payload_that_kills_the_radio_path(self):
        # A payload that is pure padding still replays cleanly.
        tester = PacketTester("D1", seed=0)
        assert tester.verify_payload(b"\x00" * 40) is None


class TestCongestedMedium:
    def test_many_endpoints_share_the_channel(self):
        clock = SimClock()
        medium = RadioMedium(clock, random.Random(5))
        received = {"count": 0}

        def make_callback(name):
            def callback(reception):
                received["count"] += 1

            return callback

        from repro.zwave.constants import Region

        for i in range(50):
            medium.attach(f"node-{i}", (float(i % 7), float(i // 7)), Region.US, make_callback(i))
        from repro.zwave.frame import make_nop

        for i in range(20):
            medium.transmit(f"node-{i}", make_nop(0x1234, 1, 2).encode(), 100.0)
        clock.advance(5.0)
        # Every transmission reaches the other 49 endpoints.
        assert received["count"] == 20 * 49


# -- the resilience matrix -----------------------------------------------------

#: One plan per fault family.  The worker plan targets unit 0 only so the
#: second trial survives; "raise" (not "crash") keeps the serial path —
#: which runs the fault in-process — alive.
FAMILY_PLANS = {
    "medium": lossy_link_plan(drop_rate=0.3, corrupt_rate=0.1),
    "controller": flaky_controller_plan(
        hang_every_s=60.0, hang_s=2.0, reset_every_s=150.0
    ),
    "worker": FaultPlan(
        name="worker-raise-first",
        faults=(FaultSpec("worker", "raise", unit_index=0),),
    ),
    "campaign": FaultPlan(
        name="abort-early",
        faults=(FaultSpec("campaign", "abort", at_s=120.0),),
    ),
}

DURATION = 300.0
TRIALS = 2


def _chaos_doc(plan, workers):
    summary = run_trials(
        device="D1",
        mode=Mode.FULL,
        n_trials=TRIALS,
        duration=DURATION,
        base_seed=0,
        workers=workers,
        fault_plan=plan,
    )
    return summary, dumps_chaos_document(build_chaos_document(summary, plan, 0))


@pytest.mark.parametrize("family", sorted(FAMILY_PLANS))
class TestResilienceMatrix:
    def test_campaigns_finish_and_shard_identically(self, family):
        """Fault family x {serial, workers=2}: campaigns always finish,
        surviving trials are merged, and the canonical chaos document —
        merged metrics included — is byte-identical across executors."""
        plan = FAMILY_PLANS[family]
        serial_summary, serial_doc = _chaos_doc(plan, workers=1)

        # The series completed: every unit either produced a trial or a
        # structured failure — nothing wedged, nothing vanished.
        assert serial_summary.n_trials + len(serial_summary.failures) == TRIALS
        if family == "worker":
            # Unit 0's injected raise exhausts its retries and surfaces;
            # the other trial must survive untouched.
            assert len(serial_summary.failures) == 1
            assert serial_summary.n_trials == TRIALS - 1
        else:
            assert not serial_summary.failures
        if family == "campaign":
            assert all(
                t.degradation is not None and t.degradation.reason == "abort"
                for t in serial_summary.trials
            )

        if not parallel_supported():
            pytest.skip("no process pool here")
        _, parallel_doc = _chaos_doc(plan, workers=2)
        assert serial_doc == parallel_doc

    def test_reports_are_reproducible(self, family):
        """Same plan + seed: byte-identical documents on repeated runs."""
        plan = FAMILY_PLANS[family]
        _, first = _chaos_doc(plan, workers=1)
        _, second = _chaos_doc(plan, workers=1)
        assert first == second
