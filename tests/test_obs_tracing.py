"""Unit tests for the tracing span API and its bounded ring."""

import json

from repro.obs.metrics import MetricsCollector, SpanStats, collecting
from repro.obs.tracing import (
    DEFAULT_CAPACITY,
    SpanRecord,
    Tracer,
    current_tracer,
    span,
    tracing_to,
)
from repro.radio.clock import SimClock


class TestTracer:
    def test_span_measures_simulated_time(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("work"):
            clock.advance(2.5)
        (record,) = tracer.records()
        assert record.name == "work"
        assert record.start_s == 0.0
        assert record.end_s == 2.5
        assert record.duration_s == 2.5
        assert record.wall_us >= 0

    def test_attrs_are_stringified_and_sorted(self):
        tracer = Tracer(SimClock())
        with tracer.span("s", cmdcl=0x25, mode="FULL"):
            pass
        (record,) = tracer.records()
        assert record.attrs == {"cmdcl": "37", "mode": "FULL"}
        assert list(record.attrs) == ["cmdcl", "mode"]

    def test_span_recorded_even_on_exception(self):
        tracer = Tracer(SimClock())
        try:
            with tracer.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert tracer.total_spans == 1

    def test_ring_is_bounded_and_counts_drops(self):
        tracer = Tracer(SimClock(), capacity=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert tracer.capacity == 3
        assert tracer.total_spans == 5
        assert tracer.dropped == 2
        assert [r.name for r in tracer.records()] == ["s2", "s3", "s4"]

    def test_default_capacity(self):
        assert Tracer(SimClock()).capacity == DEFAULT_CAPACITY

    def test_clock_bound_lazily(self):
        tracer = Tracer()  # run_campaign binds the testbed clock later
        with tracer.span("early"):
            pass
        assert tracer.records()[0].duration_s == 0.0
        clock = SimClock()
        tracer.clock = clock
        with tracer.span("late"):
            clock.advance(1.0)
        assert tracer.records()[1].duration_s == 1.0

    def test_spans_fold_into_active_collector(self):
        clock = SimClock()
        tracer = Tracer(clock)
        collector = MetricsCollector()
        with collecting(collector):
            with tracer.span("phase"):
                clock.advance(0.5)
            with tracer.span("phase"):
                clock.advance(1.5)
        assert collector.snapshot().spans == {
            "phase": SpanStats(count=2, sim_time_us=2_000_000)
        }

    def test_no_collector_no_error(self):
        tracer = Tracer(SimClock())
        with tracer.span("lonely"):
            pass
        assert tracer.total_spans == 1


class TestModuleSpan:
    def test_noop_without_tracer(self):
        assert current_tracer() is None
        with span("free") as tracer:
            assert tracer is None

    def test_routes_to_active_tracer(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracing_to(tracer):
            assert current_tracer() is tracer
            with span("routed", device="D1"):
                clock.advance(1.0)
        assert current_tracer() is None
        (record,) = tracer.records()
        assert record.name == "routed"
        assert record.attrs == {"device": "D1"}

    def test_nesting_uses_innermost(self):
        outer, inner = Tracer(SimClock()), Tracer(SimClock())
        with tracing_to(outer):
            with tracing_to(inner):
                with span("deep"):
                    pass
            with span("shallow"):
                pass
        assert [r.name for r in inner.records()] == ["deep"]
        assert [r.name for r in outer.records()] == ["shallow"]

    def test_stack_restored_on_exception(self):
        tracer = Tracer(SimClock())
        try:
            with tracing_to(tracer):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_tracer() is None


class TestExport:
    def test_jsonl_roundtrip(self, tmp_path):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("a", cmdcl=0x25):
            clock.advance(1.0)
        with tracer.span("b"):
            clock.advance(0.25)
        path = tmp_path / "trace.jsonl"
        written = tracer.export_jsonl(str(path))
        assert written == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["name"] == "a"
        assert first["duration_s"] == 1.0
        assert first["attrs"] == {"cmdcl": "37"}
        assert "wall_us" in first

    def test_record_to_dict_is_json_clean(self):
        record = SpanRecord(
            name="n", start_s=0.0, end_s=1.0, wall_us=5, attrs={"k": "v"}
        )
        dumped = json.dumps(record.to_dict(), sort_keys=True)
        assert json.loads(dumped)["duration_s"] == 1.0
