"""Golden scheduler comparison: the adaptive loop's byte-for-byte pin.

``tests/data/scheduler_golden.json`` freezes the seed-0 two-device
scheduler comparison: for each testbed device, one 1 h ``Mode.FULL``
campaign per scheduler arm (static and coverage), recording the energy
trajectory (the full ``scheduler_trace``), per-class energy counters,
frames-to-first-bug and frames-to-all-static-bugs.  Any drift in the
ε-greedy policy, the energy score, corpus havoc, window accounting or
trace wire shape shows up as a byte diff here (same convention as
``obs_golden.json`` / ``faults_golden.json``).

The golden also carries the ISSUE 6 acceptance criterion as live
assertions: on both devices the coverage arm finds every planted
zero-day the static arm finds, in strictly fewer total fuzz frames.

Regenerate after an intentional policy change with::

    PYTHONPATH=src:tests python -c \
        "import test_scheduler_golden as t; t.write_golden()"
"""

import json
from pathlib import Path

import pytest

from repro.core.campaign import Mode, run_campaign

GOLDEN_PATH = Path(__file__).resolve().parent / "data" / "scheduler_golden.json"

SCHEMA = "zcover.scheduler-golden/v1"
DEVICES = ("D1", "D2")
ARMS = ("static", "coverage")
DURATION = 3600.0
SEED = 0


def _run_device(device):
    """Both scheduler arms of one device, keyed by arm name."""
    return {
        arm: run_campaign(
            device=device,
            mode=Mode.FULL,
            duration=DURATION,
            seed=SEED,
            scheduler=arm,
        )
        for arm in ARMS
    }


def _arm_record(result):
    """The golden-relevant slice of one campaign result."""
    counters = result.metrics.counters if result.metrics is not None else {}
    return {
        "scheduler": result.scheduler,
        "bug_ids": list(result.matched_bug_ids),
        "unique_vulnerabilities": result.unique_vulnerabilities,
        "packets_sent": result.fuzz.packets_sent,
        "first_zero_day_packet": result.first_zero_day_packet,
        "packets_to_find_all": result.packets_to_find(result.matched_bug_ids),
        "windows_completed": result.fuzz.windows_completed,
        "energy": {
            name.rsplit(".", 1)[1]: value
            for name, value in sorted(counters.items())
            if name.startswith("scheduler.energy.")
        },
        "coverage_novel_frames": counters.get("scheduler.coverage_novel_frames", 0),
        "corpus_size": int(
            (result.metrics.gauges if result.metrics is not None else {}).get(
                "scheduler.corpus_size", 0
            )
        ),
        "trace": [list(entry) for entry in result.scheduler_trace],
    }


def build_golden_text(campaigns=None):
    """Both devices' scheduler documents, concatenated in device order."""
    campaigns = campaigns or {device: _run_device(device) for device in DEVICES}
    parts = []
    for device in DEVICES:
        document = {
            "schema": SCHEMA,
            "device": device,
            "seed": SEED,
            "duration_s": DURATION,
            "arms": {arm: _arm_record(campaigns[device][arm]) for arm in ARMS},
        }
        parts.append(json.dumps(document, sort_keys=True, indent=1) + "\n")
    return "".join(parts)


def write_golden(campaigns=None):
    """Regenerate the golden file through the exact code path the test uses."""
    GOLDEN_PATH.write_text(build_golden_text(campaigns))


@pytest.fixture(scope="module")
def campaigns():
    return {device: _run_device(device) for device in DEVICES}


class TestGolden:
    def test_documents_match_golden_bytes(self, campaigns):
        assert GOLDEN_PATH.exists(), "run write_golden() to create the golden file"
        assert build_golden_text(campaigns) == GOLDEN_PATH.read_text()

    def test_coverage_arm_beats_static_on_every_device(self, campaigns):
        """The acceptance criterion: every static-arm zero-day found, in
        strictly fewer total fuzz frames, on the whole seed-0 device set."""
        for device in DEVICES:
            static = campaigns[device]["static"]
            coverage = campaigns[device]["coverage"]
            static_bugs = static.matched_bug_ids
            assert static_bugs, f"{device}: static arm found nothing to compare"
            assert set(static_bugs) <= set(coverage.matched_bug_ids)
            static_cost = static.packets_to_find(static_bugs)
            coverage_cost = coverage.packets_to_find(static_bugs)
            assert coverage_cost is not None
            assert coverage_cost < static_cost, (
                f"{device}: coverage needed {coverage_cost} frames vs "
                f"static {static_cost}"
            )

    def test_coverage_arm_trace_matches_its_counters(self, campaigns):
        """The trace is the energy trajectory: window counts and summed
        energy must agree with the obs counters the scheduler emitted."""
        for device in DEVICES:
            result = campaigns[device]["coverage"]
            counters = result.metrics.counters
            trace = result.scheduler_trace
            assert len(trace) >= result.fuzz.windows_completed
            by_reason = {}
            for _, _, reason in trace:
                by_reason[reason] = by_reason.get(reason, 0) + 1
            for reason, count in by_reason.items():
                assert counters[f"scheduler.windows.{reason}"] == count
            for cmdcl in {entry[0] for entry in trace}:
                expected = sum(
                    int(round(window)) for c, window, _ in trace if c == cmdcl
                )
                assert counters[f"scheduler.energy.{cmdcl:02x}"] == expected

    def test_static_arm_emits_no_scheduler_telemetry(self, campaigns):
        """The static arm stays telemetry-clean: no scheduler counters,
        no trace — the knob defaults to the seed behaviour exactly."""
        for device in DEVICES:
            result = campaigns[device]["static"]
            assert result.scheduler == "static"
            assert result.scheduler_trace == ()
            assert not any(
                name.startswith("scheduler.")
                for name in result.metrics.counters
            )

    def test_golden_documents_are_schema_tagged(self):
        decoder = json.JSONDecoder()
        text = GOLDEN_PATH.read_text()
        index = 0
        count = 0
        while index < len(text.rstrip()):
            doc, end = decoder.raw_decode(text, index)
            assert doc["schema"] == SCHEMA
            assert set(doc["arms"]) == set(ARMS)
            index = end + 1  # skip the trailing newline between documents
            count += 1
        assert count == len(DEVICES)
