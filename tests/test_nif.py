"""Tests for Node Information Frame encoding and parsing."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FrameError
from repro.zwave.application import ApplicationPayload
from repro.zwave.nif import (
    BasicDeviceClass,
    GenericDeviceClass,
    NodeInfo,
    encode_nif_report,
    encode_nif_request,
    is_nif_report,
    is_nif_request,
    parse_nif_report,
)


def controller_info(cmdcls=(0x20, 0x86)):
    return NodeInfo(
        basic=BasicDeviceClass.STATIC_CONTROLLER,
        generic=GenericDeviceClass.STATIC_CONTROLLER,
        specific=0x01,
        security=True,
        listed_cmdcls=tuple(cmdcls),
    )


class TestRequest:
    def test_request_shape(self):
        request = encode_nif_request()
        assert request.cmdcl == 0x01
        assert request.cmd == 0x01
        assert request.params == b""

    def test_request_predicate(self):
        assert is_nif_request(encode_nif_request())
        assert not is_nif_request(ApplicationPayload(0x01, 0x02))
        assert not is_nif_request(ApplicationPayload(0x20, 0x01))

    def test_report_is_not_request(self):
        assert not is_nif_request(encode_nif_report(controller_info()))


class TestReport:
    def test_roundtrip(self):
        info = controller_info((0x20, 0x25, 0x9F))
        parsed = parse_nif_report(encode_nif_report(info))
        assert parsed == info

    def test_report_predicate(self):
        assert is_nif_report(encode_nif_report(controller_info()))
        assert not is_nif_report(encode_nif_request())

    def test_parse_non_report_returns_none(self):
        assert parse_nif_report(ApplicationPayload(0x20, 0x02)) is None

    def test_capability_bits(self):
        info = NodeInfo(basic=0x03, generic=0x10, listening=True, routing=False, security=True)
        assert info.capability & 0x80
        assert not info.capability & 0x40
        assert info.capability & 0x10

    def test_is_controller(self):
        assert controller_info().is_controller
        assert not NodeInfo(basic=BasicDeviceClass.SLAVE, generic=0x10).is_controller

    def test_rejects_out_of_range_classes(self):
        with pytest.raises(FrameError):
            NodeInfo(basic=300, generic=0x10)
        with pytest.raises(FrameError):
            NodeInfo(basic=0x02, generic=0x10, listed_cmdcls=(999,))

    def test_empty_listing_roundtrip(self):
        info = NodeInfo(basic=0x02, generic=0x02, listed_cmdcls=())
        assert parse_nif_report(encode_nif_report(info)) == info

    @given(
        basic=st.integers(min_value=0, max_value=255),
        generic=st.integers(min_value=0, max_value=255),
        specific=st.integers(min_value=0, max_value=255),
        listening=st.booleans(),
        routing=st.booleans(),
        security=st.booleans(),
        cmdcls=st.lists(st.integers(min_value=0, max_value=255), max_size=30),
    )
    def test_roundtrip_property(
        self, basic, generic, specific, listening, routing, security, cmdcls
    ):
        info = NodeInfo(
            basic=basic,
            generic=generic,
            specific=specific,
            listening=listening,
            routing=routing,
            security=security,
            listed_cmdcls=tuple(cmdcls),
        )
        assert parse_nif_report(encode_nif_report(info)) == info
