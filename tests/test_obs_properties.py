"""Property tests for snapshot merging (satellite: ~500 seeded cases).

The merge algebra must be a commutative monoid over snapshots — empty is
the identity, merging is associative and commutative — and folding the
same event stream through any worker partition must produce the same
bytes.  Equality is asserted on the canonical document serialization
(``dumps_document``), the strongest byte-level form we ship.
"""

import random

import pytest

from repro.errors import SpanValueError
from repro.obs.export import dumps_document, snapshot_to_document
from repro.obs.metrics import (
    MetricsCollector,
    MetricsSnapshot,
    merge_all,
    merge_snapshots,
)

N_SEEDS = 100

COUNTER_KEYS = ("fuzzer.frames_tx", "fuzzer.detections", "bugs.unique", "mutation.generated")
GAUGE_KEYS = ("campaign.duration_s", "vfuzz.duration_s")
HIST_KEYS = ("fuzzer.payload_len", "parallel.attempts_per_unit")
SPAN_KEYS = ("campaign.fuzz", "fuzzer.window", "fingerprint.passive")


def _canon(snapshot: MetricsSnapshot) -> str:
    return dumps_document(snapshot_to_document(snapshot, meta={"kind": "prop"}))


def _random_events(rng: random.Random, n: int):
    """A reproducible stream of (kind, args) metric events."""
    events = []
    for _ in range(n):
        roll = rng.randrange(5)
        if roll == 0:
            events.append(("inc", (rng.choice(COUNTER_KEYS), rng.randrange(1, 10))))
        elif roll == 1:
            events.append(("gauge", (rng.choice(GAUGE_KEYS), rng.uniform(0, 3600))))
        elif roll == 2:
            events.append(("observe", (rng.choice(HIST_KEYS), rng.randrange(0, 64))))
        elif roll == 3:
            cmdcl = rng.randrange(0x01, 0xA0)
            cmd = rng.choice([None, rng.randrange(0x01, 0x10)])
            events.append(("cover", (cmdcl, cmd)))
        else:
            events.append(("span", (rng.choice(SPAN_KEYS), rng.randrange(0, 10**6))))
    return events


def _apply(collector: MetricsCollector, events) -> None:
    for kind, args in events:
        if kind == "inc":
            collector.inc(*args)
        elif kind == "gauge":
            collector.gauge_max(*args)
        elif kind == "observe":
            collector.observe(*args)
        elif kind == "cover":
            cmdcl, cmd = args
            collector.cover(cmdcl) if cmd is None else collector.cover(cmdcl, cmd)
        else:
            collector.record_span(*args)


def _random_snapshot(rng: random.Random) -> MetricsSnapshot:
    collector = MetricsCollector()
    _apply(collector, _random_events(rng, rng.randrange(0, 40)))
    return collector.snapshot()


@pytest.mark.parametrize("seed", range(N_SEEDS))
class TestMergeAlgebra:
    """5 properties x 100 seeds = 500 randomized cases."""

    def test_commutative(self, seed):
        rng = random.Random(seed)
        a, b = _random_snapshot(rng), _random_snapshot(rng)
        assert _canon(merge_snapshots(a, b)) == _canon(merge_snapshots(b, a))

    def test_associative(self, seed):
        rng = random.Random(1000 + seed)
        a, b, c = (_random_snapshot(rng) for _ in range(3))
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert _canon(left) == _canon(right)

    def test_empty_identity(self, seed):
        rng = random.Random(2000 + seed)
        a = _random_snapshot(rng)
        assert _canon(merge_snapshots(a, MetricsSnapshot())) == _canon(a)
        assert _canon(merge_snapshots(MetricsSnapshot(), a)) == _canon(a)

    def test_partition_invariance(self, seed):
        """Same event stream, any worker split -> byte-identical merge.

        Gauges only merge by max, so the stream is applied in order within
        contiguous partitions (exactly how core.parallel shards trials).
        """
        rng = random.Random(3000 + seed)
        events = _random_events(rng, rng.randrange(1, 80))

        def fold(cuts):
            parts = []
            previous = 0
            for cut in [*cuts, len(events)]:
                collector = MetricsCollector()
                _apply(collector, events[previous:cut])
                parts.append(collector.snapshot())
                previous = cut
            return _canon(merge_all(parts))

        serial = fold([])  # one worker
        for workers in (2, 3, 5):
            cuts = sorted(rng.randrange(0, len(events) + 1) for _ in range(workers - 1))
            assert fold(cuts) == serial

    def test_merge_all_matches_pairwise_fold(self, seed):
        rng = random.Random(4000 + seed)
        snaps = [_random_snapshot(rng) for _ in range(rng.randrange(1, 6))]
        folded = MetricsSnapshot()
        for snap in snaps:
            folded = merge_snapshots(folded, snap)
        assert _canon(merge_all(snaps)) == _canon(folded)


class TestSpanGuard:
    """The record_span integer guard and its merge-order consequence."""

    @pytest.mark.parametrize(
        "bad",
        [1.0, 12.5, True, False, "12", None, 10**3 + 0.0],
        ids=["float-whole", "float-frac", "true", "false", "str", "none", "float-e3"],
    )
    def test_non_integer_span_raises_structured_error(self, bad):
        collector = MetricsCollector()
        with pytest.raises(SpanValueError) as excinfo:
            collector.record_span("campaign.fuzz", bad)
        assert excinfo.value.name == "campaign.fuzz"
        assert excinfo.value.value == bad or excinfo.value.value is bad
        # Nothing was folded: the guard rejects before mutating state.
        assert collector.snapshot().spans == {}

    def test_integer_spans_accumulate_exactly(self):
        collector = MetricsCollector()
        collector.record_span("campaign.fuzz", 3)
        collector.record_span("campaign.fuzz", 4)
        stats = collector.snapshot().spans["campaign.fuzz"]
        assert (stats.count, stats.sim_time_us) == (2, 7)

    @pytest.mark.parametrize("seed", range(N_SEEDS))
    def test_span_merge_is_order_independent(self, seed):
        """Exact-int spans make every merge order byte-identical.

        This is the property the guard protects: int addition is
        associative and commutative, so shuffled worker snapshots fold to
        the same document.  (Floats would have made this grouping-
        sensitive, which is why record_span refuses them.)
        """
        rng = random.Random(5000 + seed)
        parts = []
        for _ in range(rng.randrange(2, 7)):
            collector = MetricsCollector()
            for _ in range(rng.randrange(0, 25)):
                collector.record_span(
                    rng.choice(SPAN_KEYS), rng.randrange(0, 10**9)
                )
            parts.append(collector.snapshot())
        reference = _canon(merge_all(parts))
        for _ in range(4):
            rng.shuffle(parts)
            assert _canon(merge_all(parts)) == reference
