"""Tests for SVG figure rendering and the campaign summary report."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.plot import figure5_svg, figure12_svg, save_svg
from repro.analysis.summary import campaign_report
from repro.core.campaign import Mode, run_campaign


@pytest.fixture(scope="module")
def campaign():
    return run_campaign("D1", Mode.FULL, duration=600.0, seed=0)


class TestFigure5Svg:
    def test_well_formed_xml(self, full_registry):
        svg = figure5_svg(full_registry)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_contains_sixteen_bars(self, full_registry):
        svg = figure5_svg(full_registry)
        assert svg.count("<rect") == 16 + 1  # bars + background

    def test_labels_present(self, full_registry):
        svg = figure5_svg(full_registry)
        assert "NETWORK_MANAGEMENT_INCLUSION" in svg
        assert ">23<" in svg  # the tallest bar's value label


class TestFigure12Svg:
    def test_well_formed_xml(self, campaign):
        root = ET.fromstring(figure12_svg(campaign))
        assert root.tag.endswith("svg")

    def test_polyline_and_crosses(self, campaign):
        svg = figure12_svg(campaign)
        assert "<polyline" in svg
        assert svg.count("#cc3311") >= 2  # at least one red cross

    def test_bug_labels_rendered(self, campaign):
        svg = figure12_svg(campaign)
        assert "#05" in svg  # the first discovery on D1

    def test_save_svg(self, campaign, tmp_path):
        path = save_svg(figure12_svg(campaign), tmp_path / "fig12.svg")
        assert path.exists()
        assert path.read_text().startswith("<svg")


class TestCampaignReport:
    def test_report_sections(self, campaign):
        report = campaign_report(campaign)
        assert "# ZCover campaign report — D1 (ZooZ" in report
        assert "## Target fingerprint" in report
        assert "## Verified findings" in report
        assert "## Discovery timeline" in report

    def test_fingerprint_content(self, campaign):
        report = campaign_report(campaign)
        assert "`E7DE3F3D`" in report
        assert "hidden command classes discovered: 28" in report

    def test_findings_table(self, campaign):
        report = campaign_report(campaign)
        assert "CVE-2024-50929" in report
        assert "| 05 | 0x01 |" in report

    def test_empty_findings(self):
        result = run_campaign("D1", Mode.FULL, duration=30.0, seed=0)
        report = campaign_report(result)
        assert "No vulnerabilities confirmed." in report or "| 0x" in report
