"""Unit tests for the wire-safety rule family (W301/W302)."""

import ast
from pathlib import Path

from repro.lint.base import SourceFile, collect_sources
from repro.lint.wiresafety import WireSafetyAnalyzer

SRC_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"

HEADER = "from dataclasses import dataclass\nfrom typing import *\n"


def make_source(text, rel="mod.py"):
    return SourceFile(
        path=Path(rel), rel=rel, text=text, tree=ast.parse(text),
        lines=text.splitlines(),
    )


def lint(*sources, **kwargs):
    analyzer = WireSafetyAnalyzer(**kwargs)
    return analyzer.analyze([make_source(text, rel) for rel, text in sources])


def rules(findings):
    return [f.rule for f in findings]


class TestSyntheticDataclasses:
    """Without core/resultio.py every module-level dataclass is a root."""

    def test_clean_dataclass_passes(self):
        text = HEADER + (
            "@dataclass\n"
            "class P:\n"
            "    a: int\n"
            "    b: Optional[str]\n"
            "    c: List[bytes]\n"
            "    d: Dict[str, float]\n"
            "    e: Tuple[int, ...]\n"
            "    f: FrozenSet[int]\n"
            "    g: bool = True\n"
        )
        assert lint(("mod.py", text)) == []

    def test_any_flagged(self):
        text = HEADER + "@dataclass\nclass P:\n    x: Any\n"
        findings = lint(("mod.py", text))
        assert rules(findings) == ["W301"]
        assert "'x'" in findings[0].message

    def test_object_inside_container_flagged(self):
        text = HEADER + "@dataclass\nclass P:\n    x: List[object]\n"
        assert rules(lint(("mod.py", text))) == ["W301"]

    def test_unknown_name_flagged(self):
        text = HEADER + "@dataclass\nclass P:\n    x: Mystery\n"
        findings = lint(("mod.py", text))
        assert rules(findings) == ["W302"]
        assert "Mystery" in findings[0].message

    def test_nested_dataclass_checked_recursively(self):
        text = HEADER + (
            "@dataclass\n"
            "class Inner:\n"
            "    bad: Any\n"
            "@dataclass\n"
            "class Outer:\n"
            "    inner: List[Inner]\n"
        )
        findings = lint(("mod.py", text))
        # Inner is reported once even though it is both a root and nested.
        assert rules(findings) == ["W301"]
        assert "Inner" in findings[0].message

    def test_enum_field_passes(self):
        text = HEADER + (
            "from enum import Enum\n"
            "class Kind(Enum):\n"
            "    A = 'a'\n"
            "@dataclass\n"
            "class P:\n"
            "    kind: Kind\n"
        )
        assert lint(("mod.py", text)) == []

    def test_plain_class_field_flagged(self):
        text = HEADER + (
            "class Opaque:\n"
            "    pass\n"
            "@dataclass\n"
            "class P:\n"
            "    o: Opaque\n"
        )
        findings = lint(("mod.py", text))
        assert rules(findings) == ["W301"]
        assert "no wire codec" in findings[0].message

    def test_known_codec_class_passes(self):
        text = HEADER + (
            "class Opaque:\n"
            "    pass\n"
            "@dataclass\n"
            "class P:\n"
            "    o: Opaque\n"
        )
        findings = lint(("mod.py", text), known_codecs=frozenset({"Opaque"}))
        assert findings == []

    def test_alias_resolution(self):
        text = HEADER + (
            "Signature = Tuple[int, str, Optional[int]]\n"
            "@dataclass\n"
            "class P:\n"
            "    sig: Signature\n"
        )
        assert lint(("mod.py", text)) == []

    def test_bad_alias_flagged(self):
        text = HEADER + (
            "Blob = Dict[str, Any]\n"
            "@dataclass\n"
            "class P:\n"
            "    blob: Blob\n"
        )
        assert rules(lint(("mod.py", text))) == ["W301"]

    def test_forward_reference_string(self):
        text = HEADER + (
            "@dataclass\n"
            "class P:\n"
            "    x: 'List[Any]'\n"
        )
        assert rules(lint(("mod.py", text))) == ["W301"]

    def test_classvar_ignored(self):
        text = HEADER + (
            "@dataclass\n"
            "class P:\n"
            "    registry: ClassVar[Any] = None\n"
            "    x: int = 0\n"
        )
        assert lint(("mod.py", text)) == []


class TestRootDiscovery:
    """With core/resultio.py present, its module-level imports are roots."""

    RESULTIO = (
        "import json\n"
        "from .models import Wire\n"
        "def save(x):\n"
        "    from .models import Local\n"
        "    return Local\n"
    )
    MODELS = HEADER + (
        "@dataclass\n"
        "class Wire:\n"
        "    a: int\n"
        "@dataclass\n"
        "class Local:\n"
        "    bad: Any\n"
    )

    def test_only_module_level_imports_are_roots(self):
        findings = lint(
            ("core/resultio.py", self.RESULTIO), ("models.py", self.MODELS)
        )
        # Local (with its Any field) is imported inside a function, so it
        # is not part of the wire vocabulary and must not be flagged.
        assert findings == []

    def test_module_level_import_is_checked(self):
        resultio = "from .models import Wire, Local\n"
        findings = lint(
            ("core/resultio.py", resultio), ("models.py", self.MODELS)
        )
        assert rules(findings) == ["W301"]

    def test_stdlib_imports_ignored(self):
        resultio = "import json\nfrom typing import Any\nfrom .models import Wire\n"
        findings = lint(
            ("core/resultio.py", resultio), ("models.py", self.MODELS)
        )
        assert findings == []


class TestRealTree:
    def test_wire_vocabulary_is_clean(self):
        sources = collect_sources(SRC_ROOT)
        assert WireSafetyAnalyzer().analyze(sources) == []

    def test_real_roots_are_nontrivial(self):
        # Guard against silent no-op: the resultio vocabulary must be found.
        analyzer = WireSafetyAnalyzer()
        sources = collect_sources(SRC_ROOT)
        index, _aliases, _functions = analyzer._build_index(sources)
        roots = analyzer._wire_roots(sources, index)
        assert {"FuzzResult", "CampaignResult", "VFuzzResult", "BugLog"}.issubset(
            set(roots)
        )
