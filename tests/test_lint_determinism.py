"""Unit tests for the determinism rule family (D101/D102/D103)."""

import ast
from pathlib import Path

from repro.lint.base import SourceFile
from repro.lint.determinism import DeterminismAnalyzer
from repro.lint.findings import Severity


def make_source(text, rel="mod.py"):
    return SourceFile(
        path=Path(rel), rel=rel, text=text, tree=ast.parse(text),
        lines=text.splitlines(),
    )


def lint(text, rel="mod.py", **kwargs):
    return DeterminismAnalyzer(**kwargs).analyze([make_source(text, rel)])


def rules(findings):
    return [f.rule for f in findings]


class TestD101GlobalEntropy:
    def test_module_level_random_call(self):
        findings = lint("import random\nx = random.random()\n")
        assert rules(findings) == ["D101"]
        assert findings[0].line == 2
        assert findings[0].severity is Severity.ERROR

    def test_many_random_functions(self):
        text = (
            "import random\n"
            "a = random.randint(0, 7)\n"
            "b = random.choice([1, 2])\n"
            "random.shuffle([])\n"
            "random.seed(4)\n"
        )
        assert rules(lint(text)) == ["D101"] * 4

    def test_aliased_import(self):
        findings = lint("import random as rnd\nx = rnd.random()\n")
        assert rules(findings) == ["D101"]

    def test_from_import(self):
        findings = lint("from random import randint\nx = randint(1, 2)\n")
        assert rules(findings) == ["D101"]

    def test_time_reads(self):
        text = "import time\nt = time.time()\nm = time.monotonic()\n"
        assert rules(lint(text)) == ["D101", "D101"]

    def test_time_sleep_is_fine(self):
        assert lint("import time\ntime.sleep(1)\n") == []

    def test_datetime_now(self):
        text = "import datetime\nn = datetime.datetime.now()\n"
        assert rules(lint(text)) == ["D101"]

    def test_datetime_class_import(self):
        text = "from datetime import datetime\nn = datetime.utcnow()\n"
        assert rules(lint(text)) == ["D101"]

    def test_os_urandom(self):
        assert rules(lint("import os\nk = os.urandom(16)\n")) == ["D101"]

    def test_uuid4(self):
        assert rules(lint("import uuid\nu = uuid.uuid4()\n")) == ["D101"]

    def test_secrets(self):
        assert rules(lint("import secrets\nt = secrets.token_bytes(8)\n")) == ["D101"]

    def test_plumbed_rng_is_fine(self):
        text = "def f(rng):\n    return rng.random() + rng.randint(0, 5)\n"
        assert lint(text) == []

    def test_unrelated_module_same_function_name(self):
        # `foo.random()` where foo is not the random module must not fire.
        assert lint("import json\nx = json.random()\n") == []


class TestD102UnseededConstruction:
    def test_unseeded_random(self):
        findings = lint("import random\nr = random.Random()\n")
        assert rules(findings) == ["D102"]

    def test_seeded_random_is_fine(self):
        assert lint("import random\nr = random.Random(0)\n") == []

    def test_from_import_random_class(self):
        assert rules(lint("from random import Random\nr = Random()\n")) == ["D102"]

    def test_system_random_even_with_args(self):
        findings = lint("import random\nr = random.SystemRandom(1)\n")
        assert rules(findings) == ["D102"]


class TestD103SetIteration:
    def test_for_over_set_literal(self):
        assert rules(lint("for x in {3, 1, 2}:\n    print(x)\n")) == ["D103"]

    def test_for_over_set_call(self):
        assert rules(lint("for x in set([1, 2]):\n    print(x)\n")) == ["D103"]

    def test_comprehension_over_frozenset(self):
        text = "out = [x for x in frozenset((1, 2))]\n"
        assert rules(lint(text)) == ["D103"]

    def test_for_over_set_union(self):
        text = "a = {1}\nb = {2}\nfor x in a | {3}:\n    print(x)\n"
        assert rules(lint(text)) == ["D103"]

    def test_sorted_wrapping_is_fine(self):
        assert lint("for x in sorted({3, 1, 2}):\n    print(x)\n") == []

    def test_membership_test_is_fine(self):
        assert lint("ok = 3 in {1, 2, 3}\n") == []

    def test_list_iteration_is_fine(self):
        assert lint("for x in [3, 1, 2]:\n    print(x)\n") == []


class TestEntropyOwnerAllowlist:
    def test_owner_module_exempt_from_d101_d102(self):
        text = "import random\nr = random.Random()\nx = random.random()\n"
        findings = lint(text, rel="radio/clock.py")
        assert findings == []

    def test_owner_module_still_subject_to_d103(self):
        text = "for x in {1, 2}:\n    print(x)\n"
        assert rules(lint(text, rel="radio/clock.py")) == ["D103"]

    def test_custom_owner_set(self):
        text = "import random\nx = random.random()\n"
        findings = lint(text, rel="mine.py", entropy_owners=frozenset({"mine.py"}))
        assert findings == []
