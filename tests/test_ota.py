"""Tests for the firmware-update (OTA) flow over command class 0x7A."""

import pytest

from repro.simulator.ota import (
    FirmwareImage,
    FirmwareSender,
    OtaCapableSensor,
    STATUS_BAD_CHECKSUM,
    STATUS_OK,
)
from repro.simulator.testbed import build_sut
from repro.zwave.checksum import crc16

SENSOR_ID = 8


@pytest.fixture
def setting():
    sut = build_sut("D1", seed=40, traffic=False)
    sensor = OtaCapableSensor(
        "ota-sensor",
        sut.profile.home_id,
        SENSOR_ID,
        sut.clock,
        sut.medium,
        position=(4.0, 2.0),
        firmware_version=1,
    )
    from repro.simulator.memory import NodeRecord

    sut.controller.nvm.add(NodeRecord(node_id=SENSOR_ID, generic=0x20, name="ota"))
    image = FirmwareImage(version=2, data=bytes(range(256)) * 2)  # 512 B
    sender = FirmwareSender(sut.controller, image)
    return sut, sensor, sender, image


class TestFirmwareImage:
    def test_fragmentation(self):
        image = FirmwareImage(2, bytes(45))
        assert image.fragment_count == 3
        assert len(image.fragment(1)) == 20
        assert len(image.fragment(3)) == 5

    def test_single_fragment_minimum(self):
        assert FirmwareImage(2, b"").fragment_count == 1

    def test_checksum_is_crc16(self):
        image = FirmwareImage(2, b"firmware blob")
        assert image.checksum == crc16(b"firmware blob")


class TestOtaFlow:
    def test_successful_update_bumps_version(self, setting):
        sut, sensor, sender, image = setting
        sender.start(SENSOR_ID)
        sut.clock.advance(5.0)
        assert sensor.update_status == STATUS_OK
        assert sensor.firmware_version == 2
        assert sender.completed.get(SENSOR_ID) == STATUS_OK
        assert sender.fragments_sent == image.fragment_count

    def test_fragments_cross_the_air(self, setting):
        sut, sensor, sender, image = setting
        sut.dongle.clear_captures()
        sender.start(SENSOR_ID)
        sut.clock.advance(5.0)
        fragments = [
            c.frame
            for c in sut.dongle.captures()
            if c.frame and c.frame.payload[:2] == bytes([0x7A, 0x06])
        ]
        assert len(fragments) == image.fragment_count

    def test_md_get_reports_current_version(self, setting):
        sut, sensor, sender, image = setting
        sut.dongle.clear_captures()
        sut.controller.send_command(SENSOR_ID, __import__(
            "repro.zwave.application", fromlist=["ApplicationPayload"]
        ).ApplicationPayload(0x7A, 0x01, b""))
        sut.clock.advance(0.5)
        reports = [
            c.frame.payload
            for c in sut.dongle.captures()
            if c.frame and c.frame.src == SENSOR_ID and c.frame.payload[:2] == b"\x7a\x02"
        ]
        assert reports and reports[0][4] == 1  # version byte

    def test_corrupted_offer_checksum_rejected(self, setting):
        sut, sensor, sender, image = setting
        from repro.zwave.application import ApplicationPayload

        bad_offer = bytes([0x00, 0x01, 0xDE, 0xAD, image.fragment_count])
        sut.controller.send_command(
            SENSOR_ID, ApplicationPayload(0x7A, 0x03, bad_offer)
        )
        sut.clock.advance(5.0)
        assert sensor.update_status == STATUS_BAD_CHECKSUM
        assert sensor.firmware_version == 1  # rollback: old image keeps running

    def test_ota_flow_never_triggers_the_0x7a_bugs(self, setting):
        """The legitimate flow coexists with the vulnerable handlers."""
        sut, sensor, sender, image = setting
        sender.start(SENSOR_ID)
        sut.clock.advance(5.0)
        assert not sut.controller.hung
        assert [e for e in sut.controller.events() if e.bug_id] == []

    def test_second_update_cycle(self, setting):
        sut, sensor, sender, image = setting
        sender.start(SENSOR_ID)
        sut.clock.advance(5.0)
        assert sensor.firmware_version == 2
        sender.start(SENSOR_ID)
        sut.clock.advance(5.0)
        assert sensor.firmware_version == 3


class TestResumeAndAbort:
    """Mid-transfer re-offers: same image resumes from the buffered
    fragments, a different image aborts and restarts from scratch."""

    def _offer_body(self, image):
        return bytes([0x00, 0x01]) + image.checksum.to_bytes(2, "big") + bytes(
            [image.fragment_count]
        )

    def _partial_transfer(self, sut, image, send_numbers):
        """Offer *image* with no sender attached, then hand-deliver just
        the fragments in *send_numbers* — leaving the device mid-transfer."""
        from repro.simulator.ota import CMD_REQUEST_GET, CMD_UPDATE_REPORT, LAST_FRAGMENT_FLAG
        from repro.zwave.application import ApplicationPayload

        sut.controller.send_command(
            SENSOR_ID, ApplicationPayload(0x7A, CMD_REQUEST_GET, self._offer_body(image))
        )
        sut.clock.advance(1.0)
        for number in send_numbers:
            flags = number
            if number == image.fragment_count:
                flags |= LAST_FRAGMENT_FLAG
            sut.controller.send_command(
                SENSOR_ID,
                ApplicationPayload(
                    0x7A, CMD_UPDATE_REPORT, bytes([flags]) + image.fragment(number)
                ),
            )
        sut.clock.advance(1.0)

    @pytest.fixture
    def bare(self):
        """The OTA fixture without a FirmwareSender listening yet."""
        sut = build_sut("D1", seed=41, traffic=False)
        sensor = OtaCapableSensor(
            "ota-sensor",
            sut.profile.home_id,
            SENSOR_ID,
            sut.clock,
            sut.medium,
            position=(4.0, 2.0),
            firmware_version=1,
        )
        from repro.simulator.memory import NodeRecord

        sut.controller.nvm.add(NodeRecord(node_id=SENSOR_ID, generic=0x20, name="ota"))
        return sut, sensor

    def test_same_image_reoffer_resumes_and_pulls_only_gaps(self, bare):
        sut, sensor = bare
        image = FirmwareImage(version=2, data=bytes(range(100)))  # 5 fragments
        self._partial_transfer(sut, image, send_numbers=(1, 3, 5))
        assert sensor.update_status is None  # still mid-transfer

        sender = FirmwareSender(sut.controller, image)
        sender.start(SENSOR_ID)
        sut.clock.advance(5.0)
        assert sensor.resumes == 1
        assert sensor.restarts == 0
        # Only the two missing fragments (2 and 4) crossed the air.
        assert sender.fragments_sent == 2
        assert sensor.update_status == STATUS_OK
        assert sensor.firmware_version == 2

    def test_different_image_reoffer_aborts_and_restarts(self, bare):
        sut, sensor = bare
        old = FirmwareImage(version=2, data=bytes(range(100)))
        new = FirmwareImage(version=2, data=bytes(reversed(range(100))))
        self._partial_transfer(sut, old, send_numbers=(1, 2))

        sender = FirmwareSender(sut.controller, new)
        sender.start(SENSOR_ID)
        sut.clock.advance(5.0)
        assert sensor.restarts == 1
        assert sensor.resumes == 0
        # The stale fragments were discarded: every new fragment re-pulled.
        assert sender.fragments_sent == new.fragment_count
        assert sensor.update_status == STATUS_OK
        assert sensor.firmware_version == 2

    def test_resumed_blob_passes_the_checksum(self, bare):
        """The resumed reassembly stitches old and new fragments into the
        exact image — the CRC would catch any mixed-offer corruption."""
        sut, sensor = bare
        image = FirmwareImage(version=2, data=bytes(range(256)) * 2)  # 26 fragments
        self._partial_transfer(sut, image, send_numbers=range(1, 14))

        sender = FirmwareSender(sut.controller, image)
        sender.start(SENSOR_ID)
        sut.clock.advance(5.0)
        assert sensor.resumes == 1
        assert sender.fragments_sent == image.fragment_count - 13
        assert sensor.update_status == STATUS_OK

    def test_completed_transfer_reoffer_is_neither(self, setting):
        """Re-offering after success starts a clean second cycle: nothing
        to resume, nothing buffered to abort."""
        sut, sensor, sender, image = setting
        sender.start(SENSOR_ID)
        sut.clock.advance(5.0)
        sender.start(SENSOR_ID)
        sut.clock.advance(5.0)
        assert sensor.firmware_version == 3
        assert sensor.resumes == 0
        assert sensor.restarts == 0
