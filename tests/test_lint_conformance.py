"""Unit tests for the spec-conformance rule family (C201-C204)."""

import ast
from pathlib import Path

from repro.lint.base import SourceFile, collect_sources
from repro.lint.conformance import ConformanceAnalyzer

SRC_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"

# Every synthetic snippet includes a `registry.get(...)` call unless a test
# is specifically about C203, so unreachable-entry findings stay out of the
# way of the rule under test.
GENERIC = "def generic(registry, p):\n    registry.get(p.cmdcl)\n"


def make_source(text, rel="mod.py"):
    return SourceFile(
        path=Path(rel), rel=rel, text=text, tree=ast.parse(text),
        lines=text.splitlines(),
    )


def lint(text, full_registry, rel="mod.py"):
    analyzer = ConformanceAnalyzer(registry=full_registry)
    return analyzer.analyze([make_source(text, rel)])


def rules(findings):
    return [f.rule for f in findings]


class TestC201PhantomClass:
    def test_compare_against_unknown_cmdcl(self, full_registry):
        text = GENERIC + "def h(p):\n    return p.cmdcl == 0xEE\n"
        findings = lint(text, full_registry)
        assert rules(findings) == ["C201"]
        assert "0xEE" in findings[0].message

    def test_membership_tuple(self, full_registry):
        text = GENERIC + "def h(p):\n    return p.cmdcl in (0x20, 0xEE)\n"
        assert rules(lint(text, full_registry)) == ["C201"]

    def test_payload_construction(self, full_registry):
        text = GENERIC + "def h(ApplicationPayload):\n    return ApplicationPayload(0xEE, 0x01)\n"
        assert rules(lint(text, full_registry)) == ["C201"]

    def test_registered_cmdcl_is_fine(self, full_registry):
        text = GENERIC + "def h(p):\n    return p.cmdcl == 0x85\n"
        assert lint(text, full_registry) == []

    def test_proprietary_classes_registered(self, full_registry):
        # The full registry includes the paper's proprietary 0x01/0x02.
        text = GENERIC + "def h(p):\n    return p.cmdcl in (0x01, 0x02)\n"
        assert lint(text, full_registry) == []


class TestC202PhantomCommand:
    def test_boolop_pair_with_unknown_cmd(self, full_registry):
        # ASSOCIATION (0x85) defines 0x01-0x05; 0x1F is phantom.
        text = GENERIC + "def h(p):\n    return p.cmdcl == 0x85 and p.cmd == 0x1F\n"
        findings = lint(text, full_registry)
        assert rules(findings) == ["C202"]
        assert "ASSOCIATION" in findings[0].message

    def test_boolop_pair_with_known_cmd(self, full_registry):
        text = GENERIC + "def h(p):\n    return p.cmdcl == 0x85 and p.cmd == 0x02\n"
        assert lint(text, full_registry) == []

    def test_single_cmdcl_handler_pairing(self, full_registry):
        # A handler whose body mentions exactly one class pairs its bare
        # `.cmd` compares with it (the controller's per-class handler idiom).
        text = GENERIC + (
            "def handle_assoc(p):\n"
            "    if p.cmdcl != 0x85:\n"
            "        return\n"
            "    if p.cmd == 0x1F:\n"
            "        return True\n"
        )
        assert rules(lint(text, full_registry)) == ["C202"]

    def test_multi_cmdcl_handler_does_not_pair(self, full_registry):
        # Two candidate classes: a bare `.cmd` compare cannot be attributed.
        text = GENERIC + (
            "def switch(p):\n"
            "    if p.cmdcl in (0x20, 0x25):\n"
            "        return p.cmd == 0x7F\n"
        )
        assert lint(text, full_registry) == []


class TestC203UnreachableEntries:
    def test_fires_without_generic_dispatch(self, full_registry):
        text = "def h(p):\n    return p.cmdcl == 0x85\n"
        findings = lint(text, full_registry)
        assert all(f.rule == "C203" for f in findings)
        # every controller-relevant class except 0x85 goes unreferenced
        expected = len(full_registry.controller_relevant_ids()) - 1
        assert len(findings) == expected

    def test_suppressed_by_generic_dispatch(self, full_registry):
        text = GENERIC + "def h(p):\n    return p.cmdcl == 0x85\n"
        assert lint(text, full_registry) == []


class TestC204MutationTable:
    def test_unknown_field_key(self, full_registry):
        text = GENERIC + 'FIELD_OPERATORS = {"CMDCL": 1, "BOGUS": 2}\n'
        findings = lint(text, full_registry)
        assert rules(findings) == ["C204"]
        assert "BOGUS" in findings[0].message

    def test_canonical_fields_pass(self, full_registry):
        text = GENERIC + 'FIELD_OPERATORS = {"H-ID": 1, "CS": 2, "PARAM": 3}\n'
        assert lint(text, full_registry) == []

    def test_other_dicts_ignored(self, full_registry):
        text = GENERIC + 'LOOKUP = {"whatever": 1}\n'
        assert lint(text, full_registry) == []


class TestRealTree:
    def test_dispatch_modules_conform(self, full_registry):
        sources = collect_sources(SRC_ROOT)
        analyzer = ConformanceAnalyzer(registry=full_registry)
        assert analyzer.analyze(sources) == []

    def test_real_tree_extraction_is_nontrivial(self, full_registry):
        # Guard against the analyzer silently extracting nothing: the
        # controller's dispatch constants must actually be recovered.
        sources = collect_sources(SRC_ROOT)
        analyzer = ConformanceAnalyzer(registry=full_registry)
        controller = next(s for s in sources if s.rel == "simulator/controller.py")
        _, referenced, generic = analyzer._analyze_file(controller, full_registry)
        assert generic, "controller's registry.get dispatch not detected"
        assert {0x85, 0x70, 0x62, 0x6C, 0x60}.issubset(referenced)
