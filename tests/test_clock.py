"""Tests for the discrete-event simulated clock."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RadioError
from repro.radio.clock import SimClock, Stopwatch


class TestAdvancing:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(start=100.0).now == 100.0

    def test_advance_moves_time(self):
        clock = SimClock()
        clock.advance(5.0)
        assert clock.now == 5.0

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(7.5)
        assert clock.now == 7.5

    def test_backwards_rejected(self):
        clock = SimClock()
        clock.advance(1.0)
        with pytest.raises(RadioError):
            clock.advance(-0.5)
        with pytest.raises(RadioError):
            clock.advance_to(0.5)


class TestScheduling:
    def test_event_fires_at_deadline(self):
        clock = SimClock()
        fired = []
        clock.schedule(2.0, lambda: fired.append(clock.now))
        clock.advance(1.9)
        assert fired == []
        clock.advance(0.2)
        assert fired == [2.0]

    def test_events_fire_in_order(self):
        clock = SimClock()
        order = []
        clock.schedule(3.0, lambda: order.append("c"))
        clock.schedule(1.0, lambda: order.append("a"))
        clock.schedule(2.0, lambda: order.append("b"))
        clock.advance(5.0)
        assert order == ["a", "b", "c"]

    def test_ties_fire_fifo(self):
        clock = SimClock()
        order = []
        clock.schedule(1.0, lambda: order.append(1))
        clock.schedule(1.0, lambda: order.append(2))
        clock.advance(1.0)
        assert order == [1, 2]

    def test_negative_delay_rejected(self):
        with pytest.raises(RadioError):
            SimClock().schedule(-1.0, lambda: None)

    def test_cancel(self):
        clock = SimClock()
        fired = []
        event = clock.schedule(1.0, lambda: fired.append(1))
        clock.cancel(event)
        clock.advance(2.0)
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        clock = SimClock()
        event = clock.schedule(0.5, lambda: None)
        clock.advance(1.0)
        clock.cancel(event)  # must not raise

    def test_nested_scheduling(self):
        clock = SimClock()
        fired = []

        def outer():
            clock.schedule(1.0, lambda: fired.append(clock.now))

        clock.schedule(1.0, outer)
        clock.advance(3.0)
        assert fired == [2.0]

    def test_nested_event_due_within_same_advance(self):
        clock = SimClock()
        fired = []
        clock.schedule(0.5, lambda: clock.schedule(0.1, lambda: fired.append(clock.now)))
        clock.advance(1.0)
        assert fired == [0.6]

    def test_run_next(self):
        clock = SimClock()
        fired = []
        clock.schedule(5.0, lambda: fired.append(1))
        assert clock.run_next()
        assert clock.now == 5.0
        assert not clock.run_next()

    def test_drain(self):
        clock = SimClock()
        for delay in (1.0, 2.0, 3.0):
            clock.schedule(delay, lambda: None)
        assert clock.drain() == 3

    def test_drain_limit(self):
        clock = SimClock()
        for delay in (1.0, 2.0, 3.0):
            clock.schedule(delay, lambda: None)
        assert clock.drain(limit=2) == 2

    def test_pending_events(self):
        clock = SimClock()
        clock.schedule(1.0, lambda: None)
        assert clock.pending_events == 1

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20))
    @settings(max_examples=30)
    def test_events_always_fire_in_time_order(self, delays):
        clock = SimClock()
        fired = []
        for delay in delays:
            clock.schedule(delay, lambda: fired.append(clock.now))
        clock.advance(101.0)
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestStopwatch:
    def test_elapsed(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.advance(4.0)
        assert watch.elapsed == 4.0

    def test_restart(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.advance(4.0)
        watch.restart()
        clock.advance(1.0)
        assert watch.elapsed == 1.0
