"""Tests for CMAC (RFC 4493), CCM (RFC 3610-style), X25519 and the CKDF."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AuthenticationError, CryptoError
from repro.security.ccm import NONCE_LENGTH, TAG_LENGTH, ccm_decrypt, ccm_encrypt
from repro.security.cmac import aes_cmac, verify_cmac
from repro.security.curve25519 import public_key, shared_secret, x25519
from repro.security.kdf import ckdf_expand, ckdf_temp_extract, derive_s0_keys

RFC4493_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


class TestCmac:
    """RFC 4493 appendix vectors."""

    def test_empty_message(self):
        assert aes_cmac(RFC4493_KEY, b"") == bytes.fromhex(
            "bb1d6929e95937287fa37d129b756746"
        )

    def test_one_block(self):
        msg = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        assert aes_cmac(RFC4493_KEY, msg) == bytes.fromhex(
            "070a16b46b4d4144f79bdd9dd04a287c"
        )

    def test_40_bytes(self):
        msg = bytes.fromhex(
            "6bc1bee22e409f96e93d7e117393172a"
            "ae2d8a571e03ac9c9eb76fac45af8e51"
            "30c81c46a35ce411"
        )
        assert aes_cmac(RFC4493_KEY, msg) == bytes.fromhex(
            "dfa66747de9ae63030ca32611497c827"
        )

    def test_four_blocks(self):
        msg = bytes.fromhex(
            "6bc1bee22e409f96e93d7e117393172a"
            "ae2d8a571e03ac9c9eb76fac45af8e51"
            "30c81c46a35ce411e5fbc1191a0a52ef"
            "f69f2445df4f9b17ad2b417be66c3710"
        )
        assert aes_cmac(RFC4493_KEY, msg) == bytes.fromhex(
            "51f0bebf7e3b9d92fc49741779363cfe"
        )

    def test_verify_accepts_and_rejects(self):
        tag = aes_cmac(RFC4493_KEY, b"msg")
        assert verify_cmac(RFC4493_KEY, b"msg", tag)
        assert not verify_cmac(RFC4493_KEY, b"msg", bytes(16))
        assert not verify_cmac(RFC4493_KEY, b"other", tag)

    def test_truncated_tag_verification(self):
        tag = aes_cmac(RFC4493_KEY, b"msg")[:8]
        assert verify_cmac(RFC4493_KEY, b"msg", tag, tag_length=8)
        assert not verify_cmac(RFC4493_KEY, b"msg", tag[:4], tag_length=8)

    def test_bad_tag_length_rejected(self):
        with pytest.raises(CryptoError):
            verify_cmac(RFC4493_KEY, b"msg", b"", tag_length=0)

    @given(st.binary(max_size=100))
    @settings(max_examples=20)
    def test_deterministic_and_16_bytes(self, msg):
        tag = aes_cmac(RFC4493_KEY, msg)
        assert len(tag) == 16
        assert tag == aes_cmac(RFC4493_KEY, msg)


class TestCcm:
    KEY = b"K" * 16
    NONCE = b"N" * NONCE_LENGTH
    AAD = b"\x01\x02\x03\x04\x05"

    def test_roundtrip(self):
        blob = ccm_encrypt(self.KEY, self.NONCE, self.AAD, b"plaintext payload")
        assert ccm_decrypt(self.KEY, self.NONCE, self.AAD, blob) == b"plaintext payload"

    def test_blob_carries_tag(self):
        blob = ccm_encrypt(self.KEY, self.NONCE, self.AAD, b"abc")
        assert len(blob) == 3 + TAG_LENGTH

    def test_tampered_ciphertext_rejected(self):
        blob = bytearray(ccm_encrypt(self.KEY, self.NONCE, self.AAD, b"payload"))
        blob[0] ^= 0x01
        with pytest.raises(AuthenticationError):
            ccm_decrypt(self.KEY, self.NONCE, self.AAD, bytes(blob))

    def test_tampered_tag_rejected(self):
        blob = bytearray(ccm_encrypt(self.KEY, self.NONCE, self.AAD, b"payload"))
        blob[-1] ^= 0x01
        with pytest.raises(AuthenticationError):
            ccm_decrypt(self.KEY, self.NONCE, self.AAD, bytes(blob))

    def test_wrong_aad_rejected(self):
        blob = ccm_encrypt(self.KEY, self.NONCE, self.AAD, b"payload")
        with pytest.raises(AuthenticationError):
            ccm_decrypt(self.KEY, self.NONCE, b"other aad", blob)

    def test_wrong_nonce_rejected(self):
        blob = ccm_encrypt(self.KEY, self.NONCE, self.AAD, b"payload")
        with pytest.raises(AuthenticationError):
            ccm_decrypt(self.KEY, b"M" * NONCE_LENGTH, self.AAD, blob)

    def test_empty_plaintext_authenticated(self):
        blob = ccm_encrypt(self.KEY, self.NONCE, self.AAD, b"")
        assert ccm_decrypt(self.KEY, self.NONCE, self.AAD, blob) == b""

    def test_empty_aad(self):
        blob = ccm_encrypt(self.KEY, self.NONCE, b"", b"data")
        assert ccm_decrypt(self.KEY, self.NONCE, b"", blob) == b"data"

    def test_short_blob_rejected(self):
        with pytest.raises(AuthenticationError):
            ccm_decrypt(self.KEY, self.NONCE, b"", b"short")

    def test_bad_nonce_length_rejected(self):
        with pytest.raises(CryptoError):
            ccm_encrypt(self.KEY, b"short", b"", b"data")

    @given(st.binary(max_size=60), st.binary(max_size=20))
    @settings(max_examples=20)
    def test_roundtrip_property(self, plaintext, aad):
        blob = ccm_encrypt(self.KEY, self.NONCE, aad, plaintext)
        assert ccm_decrypt(self.KEY, self.NONCE, aad, blob) == plaintext


class TestX25519:
    def test_rfc7748_vector_one(self):
        k = bytes.fromhex(
            "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4"
        )
        u = bytes.fromhex(
            "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c"
        )
        expected = bytes.fromhex(
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        )
        assert x25519(k, u) == expected

    def test_rfc7748_vector_two(self):
        k = bytes.fromhex(
            "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d"
        )
        u = bytes.fromhex(
            "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493"
        )
        expected = bytes.fromhex(
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957"
        )
        assert x25519(k, u) == expected

    def test_dh_commutativity(self):
        alice = b"\x11" * 32
        bob = b"\x22" * 32
        assert shared_secret(alice, public_key(bob)) == shared_secret(
            bob, public_key(alice)
        )

    def test_bad_sizes_rejected(self):
        with pytest.raises(CryptoError):
            x25519(b"short", b"\x00" * 32)
        with pytest.raises(CryptoError):
            x25519(b"\x00" * 32, b"short")

    @given(st.binary(min_size=32, max_size=32), st.binary(min_size=32, max_size=32))
    @settings(max_examples=10)
    def test_dh_commutativity_property(self, a, b):
        assert x25519(a, public_key(b)) == x25519(b, public_key(a))


class TestKdf:
    def test_expand_produces_three_distinct_keys(self):
        keys = ckdf_expand(b"\x42" * 16)
        triple = {keys.ccm_key, keys.nonce_personalization, keys.mpan_key}
        assert len(triple) == 3
        assert all(len(k) == 16 for k in triple)

    def test_expand_deterministic(self):
        assert ckdf_expand(b"k" * 16) == ckdf_expand(b"k" * 16)

    def test_expand_key_separation(self):
        assert ckdf_expand(b"a" * 16).ccm_key != ckdf_expand(b"b" * 16).ccm_key

    def test_expand_rejects_bad_key(self):
        with pytest.raises(CryptoError):
            ckdf_expand(b"short")

    def test_temp_extract_binds_public_keys(self):
        secret = b"\x01" * 32
        one = ckdf_temp_extract(secret, b"A" * 32, b"B" * 32)
        two = ckdf_temp_extract(secret, b"B" * 32, b"A" * 32)
        assert one != two

    def test_temp_extract_rejects_bad_secret(self):
        with pytest.raises(CryptoError):
            ckdf_temp_extract(b"short", b"A" * 32, b"B" * 32)

    def test_s0_keys_distinct(self):
        enc, auth = derive_s0_keys(b"\x13" * 16)
        assert enc != auth
        assert len(enc) == len(auth) == 16

    def test_s0_keys_reject_bad_size(self):
        with pytest.raises(CryptoError):
            derive_s0_keys(b"tiny")
