"""CLI-level tests for `zcover lint`: exit codes, JSON schema, golden file."""

import json
from pathlib import Path

from repro.cli import main
from repro.lint import SCHEMA_VERSION, run_lint

DATA = Path(__file__).resolve().parent / "data"
FIXTURE = DATA / "lint_fixture"
GOLDEN = DATA / "lint_golden.json"


def run_cli(capsys, *argv):
    code = main(["lint", *argv])
    return code, capsys.readouterr().out


class TestRealTree:
    def test_repo_is_clean(self):
        # The acceptance bar: the shipped tree has zero findings.
        report = run_lint()
        assert report.findings == []
        assert report.exit_code == 0

    def test_cli_exit_zero(self, capsys):
        code, out = run_cli(capsys)
        assert code == 0
        assert "no findings" in out


class TestGoldenFile:
    def test_json_output_matches_golden(self, capsys):
        code, out = run_cli(capsys, "--root", str(FIXTURE), "--format", "json")
        assert code == 1
        produced = json.loads(out)
        expected = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert produced == expected

    def test_schema_envelope(self, capsys):
        _, out = run_cli(capsys, "--root", str(FIXTURE), "--format", "json")
        doc = json.loads(out)
        assert doc["schema"] == "zcover-lint-findings"
        assert doc["version"] == SCHEMA_VERSION
        assert doc["errors"] == sum(
            1 for f in doc["findings"] if f["severity"] == "error"
        )
        assert doc["warnings"] == sum(
            1 for f in doc["findings"] if f["severity"] == "warning"
        )
        for f in doc["findings"]:
            assert set(f) == {
                "rule", "severity", "path", "line", "col", "message", "hint"
            }

    def test_findings_sorted(self, capsys):
        _, out = run_cli(capsys, "--root", str(FIXTURE), "--format", "json")
        doc = json.loads(out)
        keys = [(f["path"], f["line"], f["col"], f["rule"]) for f in doc["findings"]]
        assert keys == sorted(keys)


class TestSeededViolationsPerFamily:
    """Each rule family independently forces a non-zero exit."""

    GENERIC = "def g(registry, p):\n    registry.get(p.cmdcl)\n"

    def check(self, capsys, tmp_path, text, expected_rule):
        (tmp_path / "mod.py").write_text(text, encoding="utf-8")
        code, out = run_cli(capsys, "--root", str(tmp_path), "--format", "json")
        assert code == 1
        doc = json.loads(out)
        assert expected_rule in {f["rule"] for f in doc["findings"]}

    def test_determinism(self, capsys, tmp_path):
        self.check(
            capsys, tmp_path,
            self.GENERIC + "import random\nx = random.random()\n",
            "D101",
        )

    def test_conformance(self, capsys, tmp_path):
        self.check(
            capsys, tmp_path,
            self.GENERIC + "def h(p):\n    return p.cmdcl == 0xEE\n",
            "C201",
        )

    def test_wire_safety(self, capsys, tmp_path):
        self.check(
            capsys, tmp_path,
            self.GENERIC
            + "from dataclasses import dataclass\n"
            + "from typing import Any\n"
            + "@dataclass\nclass P:\n    x: Any\n",
            "W301",
        )


class TestSuppressions:
    def test_justified_allow_is_silent(self, capsys, tmp_path):
        (tmp_path / "mod.py").write_text(
            "def g(registry, p):\n"
            "    registry.get(p.cmdcl)\n"
            "import time\n"
            "t = time.time()  # lint: allow[D101] -- test fixture\n",
            encoding="utf-8",
        )
        code, out = run_cli(capsys, "--root", str(tmp_path))
        assert code == 0
        assert "no findings" in out

    def test_unjustified_allow_warns_but_passes(self, capsys, tmp_path):
        (tmp_path / "mod.py").write_text(
            "def g(registry, p):\n"
            "    registry.get(p.cmdcl)\n"
            "import time\n"
            "t = time.time()  # lint: allow[D101]\n",
            encoding="utf-8",
        )
        code, out = run_cli(capsys, "--root", str(tmp_path))
        assert code == 0
        assert "LINT001" in out


class TestRulesListing:
    def test_lists_every_family(self, capsys):
        code, out = run_cli(capsys, "--rules")
        assert code == 0
        for rule in ("D101", "D102", "D103", "C201", "C202", "C203", "C204",
                     "W301", "W302"):
            assert rule in out
