"""CLI-level tests for `zcover lint`: exit codes, JSON schema, golden file."""

import json
from pathlib import Path

from repro.cli import main
from repro.lint import SCHEMA_VERSION, run_lint

DATA = Path(__file__).resolve().parent / "data"
FIXTURE = DATA / "lint_fixture"
GOLDEN = DATA / "lint_golden.json"


def run_cli(capsys, *argv):
    code = main(["lint", *argv])
    return code, capsys.readouterr().out


class TestRealTree:
    def test_repo_is_clean(self):
        # The acceptance bar: the shipped tree has zero findings.
        report = run_lint()
        assert report.findings == []
        assert report.exit_code == 0

    def test_cli_exit_zero(self, capsys):
        code, out = run_cli(capsys)
        assert code == 0
        assert "no findings" in out


class TestGoldenFile:
    def test_json_output_matches_golden(self, capsys):
        code, out = run_cli(capsys, "--root", str(FIXTURE), "--format", "json")
        assert code == 1
        produced = json.loads(out)
        expected = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert produced == expected

    def test_schema_envelope(self, capsys):
        _, out = run_cli(capsys, "--root", str(FIXTURE), "--format", "json")
        doc = json.loads(out)
        assert doc["schema"] == "zcover-lint-findings"
        assert doc["version"] == SCHEMA_VERSION
        assert doc["errors"] == sum(
            1 for f in doc["findings"] if f["severity"] == "error"
        )
        assert doc["warnings"] == sum(
            1 for f in doc["findings"] if f["severity"] == "warning"
        )
        for f in doc["findings"]:
            assert set(f) == {
                "rule", "severity", "path", "line", "col", "message", "hint"
            }

    def test_findings_sorted(self, capsys):
        _, out = run_cli(capsys, "--root", str(FIXTURE), "--format", "json")
        doc = json.loads(out)
        keys = [(f["path"], f["line"], f["col"], f["rule"]) for f in doc["findings"]]
        assert keys == sorted(keys)


class TestSeededViolationsPerFamily:
    """Each rule family independently forces a non-zero exit."""

    GENERIC = "def g(registry, p):\n    registry.get(p.cmdcl)\n"

    def check(self, capsys, tmp_path, text, expected_rule):
        (tmp_path / "mod.py").write_text(text, encoding="utf-8")
        code, out = run_cli(capsys, "--root", str(tmp_path), "--format", "json")
        assert code == 1
        doc = json.loads(out)
        assert expected_rule in {f["rule"] for f in doc["findings"]}

    def test_determinism(self, capsys, tmp_path):
        self.check(
            capsys, tmp_path,
            self.GENERIC + "import random\nx = random.random()\n",
            "D101",
        )

    def test_conformance(self, capsys, tmp_path):
        self.check(
            capsys, tmp_path,
            self.GENERIC + "def h(p):\n    return p.cmdcl == 0xEE\n",
            "C201",
        )

    def test_wire_safety(self, capsys, tmp_path):
        self.check(
            capsys, tmp_path,
            self.GENERIC
            + "from dataclasses import dataclass\n"
            + "from typing import Any\n"
            + "@dataclass\nclass P:\n    x: Any\n",
            "W301",
        )


class TestSuppressions:
    def test_justified_allow_is_silent(self, capsys, tmp_path):
        (tmp_path / "mod.py").write_text(
            "def g(registry, p):\n"
            "    registry.get(p.cmdcl)\n"
            "import time\n"
            "t = time.time()  # lint: allow[D101] -- test fixture\n",
            encoding="utf-8",
        )
        code, out = run_cli(capsys, "--root", str(tmp_path))
        assert code == 0
        assert "no findings" in out

    def test_unjustified_allow_warns_but_passes(self, capsys, tmp_path):
        (tmp_path / "mod.py").write_text(
            "def g(registry, p):\n"
            "    registry.get(p.cmdcl)\n"
            "import time\n"
            "t = time.time()  # lint: allow[D101]\n",
            encoding="utf-8",
        )
        code, out = run_cli(capsys, "--root", str(tmp_path))
        assert code == 0
        assert "LINT001" in out


class TestRulesListing:
    def test_lists_every_family(self, capsys):
        code, out = run_cli(capsys, "--rules")
        assert code == 0
        for rule in ("D101", "D102", "D103", "C201", "C202", "C203", "C204",
                     "W301", "W302", "D201", "D202", "D203", "D204", "W401"):
            assert rule in out


class TestSarifOutput:
    def test_sarif_matches_golden(self, capsys):
        code, out = run_cli(capsys, "--root", str(FIXTURE), "--format", "sarif")
        assert code == 1
        produced = json.loads(out)
        expected = json.loads((DATA / "lint_golden.sarif").read_text(encoding="utf-8"))
        assert produced == expected

    def test_sarif_envelope(self, capsys):
        _, out = run_cli(capsys, "--root", str(FIXTURE), "--format", "sarif")
        doc = json.loads(out)
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "zcover-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"D101", "D201", "D204", "W401", "C201", "W301"} <= rule_ids
        for result in run["results"]:
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startColumn"] >= 1  # SARIF columns are 1-based

    def test_out_writes_file(self, capsys, tmp_path):
        target = tmp_path / "lint.sarif"
        code, out = run_cli(
            capsys, "--root", str(FIXTURE), "--format", "sarif",
            "--out", str(target),
        )
        assert code == 1
        assert "written to" in out
        assert json.loads(target.read_text(encoding="utf-8"))["version"] == "2.1.0"


class TestStrict:
    WARN_ONLY = (
        "def g(registry, p):\n"
        "    registry.get(p.cmdcl)\n"
        "import time\n"
        "t = time.time()  # lint: allow[D101]\n"
    )

    def test_strict_fails_on_warnings(self, capsys, tmp_path):
        (tmp_path / "mod.py").write_text(self.WARN_ONLY, encoding="utf-8")
        code, _ = run_cli(capsys, "--root", str(tmp_path), "--strict")
        assert code == 1

    def test_default_passes_on_warnings(self, capsys, tmp_path):
        (tmp_path / "mod.py").write_text(self.WARN_ONLY, encoding="utf-8")
        code, _ = run_cli(capsys, "--root", str(tmp_path))
        assert code == 0

    def test_real_tree_survives_strict(self, capsys):
        code, _ = run_cli(capsys, "--strict")
        assert code == 0


class TestJobs:
    def test_jobs2_byte_identical_to_serial(self, capsys):
        _, serial = run_cli(capsys, "--root", str(FIXTURE), "--format", "json")
        _, sharded = run_cli(
            capsys, "--root", str(FIXTURE), "--format", "json", "--jobs", "2"
        )
        assert serial == sharded


class TestManifestCli:
    GOLDEN_MANIFEST = DATA / "purity_manifest_golden.json"

    def test_write_matches_golden(self, capsys, tmp_path):
        target = tmp_path / "manifest.json"
        run_cli(
            capsys, "--root", str(FIXTURE), "--write-manifest", str(target)
        )
        assert target.read_text(encoding="utf-8") == self.GOLDEN_MANIFEST.read_text(
            encoding="utf-8"
        )

    def test_check_clean(self, capsys):
        code, out = run_cli(
            capsys, "--root", str(FIXTURE),
            "--check-manifest", str(self.GOLDEN_MANIFEST),
        )
        # Findings still fail the run (exit 1) but the manifest matches.
        assert code == 1
        assert "matches" in out

    def test_check_drift_exits_2(self, capsys, tmp_path):
        drifted = json.loads(self.GOLDEN_MANIFEST.read_text(encoding="utf-8"))
        drifted["entry_points"]["mod.py::dispatch"]["verdict"] = "pure-given-seed"
        stale = tmp_path / "manifest.json"
        stale.write_text(json.dumps(drifted), encoding="utf-8")
        code, out = run_cli(
            capsys, "--root", str(FIXTURE), "--check-manifest", str(stale)
        )
        assert code == 2
        assert "drift" in out
        assert "mod.py::dispatch" in out

    def test_check_unreadable_exits_2(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "--root", str(FIXTURE),
            "--check-manifest", str(tmp_path / "missing.json"),
        )
        assert code == 2
        assert "unreadable" in out
