"""Tests for the fuzzing engine (Algorithm 1) and the packet tester."""

import random

import pytest

from repro.core.fuzzer import (
    FuzzerConfig,
    FuzzingEngine,
    psm_streams,
    random_stream,
)
from repro.core.mutation import PositionSensitiveMutator, RandomMutator
from repro.core.tester import PacketTester
from repro.core.monitor import ObservedKind
from repro.zwave.registry import load_full_registry


def engine_for(sut, **config_overrides):
    config = FuzzerConfig(**config_overrides)
    return FuzzingEngine(sut, config)


def psm(queue, seed=0, window=60.0, requeue=False):
    mutator = PositionSensitiveMutator(load_full_registry(), random.Random(seed))
    return psm_streams(queue, mutator, window, requeue)


class TestEngineTiming:
    def test_packet_rate_matches_paper(self, quiet_sut):
        """≈800 packets in 600 s (Figure 12)."""
        engine = engine_for(quiet_sut)
        result = engine.run(psm([0x62, 0x60, 0x70, 0x71, 0x85, 0x26, 0x25, 0x20, 0x27, 0x2B], window=60.0), 600.0)
        assert 700 <= result.packets_sent <= 830

    def test_respects_duration(self, quiet_sut):
        engine = engine_for(quiet_sut)
        result = engine.run(psm([0x20], requeue=True), 30.0)
        assert result.duration == pytest.approx(30.0, abs=2.0)

    def test_window_moves_queue_forward(self, quiet_sut):
        engine = engine_for(quiet_sut, cmdcl_time=15.0)
        result = engine.run(psm([0x62, 0x70, 0x85]), 300.0)
        assert result.windows_completed == 3
        assert result.cmdcls_used == {0x62, 0x70, 0x85}


class TestEngineDetection:
    def test_detects_hang_bug(self, quiet_sut):
        engine = engine_for(quiet_sut)
        result = engine.run(psm([0x5A]), 30.0)
        assert any(d.cmdcl == 0x5A and d.observed == "hang" for d in result.detections)

    def test_detects_memory_bugs(self, quiet_sut):
        engine = engine_for(quiet_sut)
        result = engine.run(psm([0x01], window=120.0), 200.0)
        kinds = {d.observed for d in result.detections}
        assert "memory_wakeup_clear" in kinds
        assert "memory_modify" in kinds

    def test_detects_host_bug(self, quiet_sut):
        engine = engine_for(quiet_sut)
        result = engine.run(psm([0x9F], window=90.0), 120.0)
        assert any(d.observed == "host_crash" for d in result.detections)

    def test_recovery_restores_sut(self, quiet_sut):
        engine = engine_for(quiet_sut)
        engine.run(psm([0x01], window=120.0), 200.0)
        assert not quiet_sut.controller.hung
        assert quiet_sut.host.responsive
        assert quiet_sut.controller.nvm.snapshot() == engine.observer.golden

    def test_bug_log_matches_detections(self, quiet_sut):
        engine = engine_for(quiet_sut)
        result = engine.run(psm([0x5A, 0x7A]), 150.0)
        assert len(result.bug_log) == len(result.detections)

    def test_duplicate_findings_do_not_extend_window(self, quiet_sut):
        # 0x5A triggers on every bare command; without novelty gating the
        # fuzzer would never leave the class.
        engine = engine_for(quiet_sut, cmdcl_time=20.0)
        result = engine.run(psm([0x5A, 0x62]), 600.0)
        assert 0x62 in result.cmdcls_used

    def test_timeline_sampled(self, quiet_sut):
        engine = engine_for(quiet_sut)
        result = engine.run(psm([0x20], requeue=True), 60.0)
        assert result.timeline
        assert result.timeline[-1].packets == result.packets_sent


class TestRandomStream:
    def test_gamma_stream_runs(self, quiet_sut):
        engine = engine_for(quiet_sut)
        result = engine.run(random_stream(RandomMutator(random.Random(0))), 60.0)
        assert result.packets_sent > 50
        assert result.cmdcl_coverage > 40


class TestPacketTester:
    def test_verify_hang_payload_measures_duration(self):
        tester = PacketTester("D1", seed=0)
        finding = tester.verify_payload(bytes([0x5A, 0x01]))
        assert finding is not None
        assert finding.kind is ObservedKind.HANG
        assert finding.duration_s == pytest.approx(68.0, abs=2.0)
        assert finding.match_table3().bug_id == 7

    def test_verify_distinguishes_same_class_hangs(self):
        tester = PacketTester("D1", seed=0)
        bug8 = tester.verify_payload(bytes([0x59, 0x03, 0x00, 0x01]))
        bug11 = tester.verify_payload(bytes([0x59, 0x05, 0x00, 0x01]))
        assert bug8.match_table3().bug_id == 8
        assert bug11.match_table3().bug_id == 11
        assert bug8.signature != bug11.signature

    def test_verify_memory_payload(self):
        tester = PacketTester("D1", seed=0)
        finding = tester.verify_payload(bytes([0x01, 0x0D, 0x02, 0x03]))
        assert finding.kind is ObservedKind.MEMORY_REMOVE
        assert finding.duration_s is None
        assert finding.duration_label == "Infinite"
        assert finding.match_table3().bug_id == 3

    def test_verify_host_payload(self):
        tester = PacketTester("D1", seed=0)
        finding = tester.verify_payload(bytes([0x9F, 0x01]))
        assert finding.kind is ObservedKind.HOST_CRASH
        assert finding.match_table3().bug_id == 6

    def test_verify_benign_payload_returns_none(self):
        tester = PacketTester("D1", seed=0)
        assert tester.verify_payload(bytes([0x20, 0x02])) is None

    def test_bug14_four_minute_outage(self):
        tester = PacketTester("D1", seed=0)
        finding = tester.verify_payload(bytes([0x01, 0x04, 0xFF]))
        assert finding.kind is ObservedKind.HANG
        assert finding.duration_s == pytest.approx(240.0, abs=2.0)
        assert finding.duration_label == "4 min"
        assert finding.match_table3().bug_id == 14

    def test_verify_log_dedups_by_signature(self):
        tester = PacketTester("D1", seed=0)
        groups = [
            (bytes([0x5A, 0x01]), 10.0, 13),
            (bytes([0x5A, 0x02]), 12.0, 16),  # same bug, different command
            (bytes([0x9F, 0x01]), 20.0, 27),
        ]
        unique = tester.verify_log(groups)
        assert len(unique) == 2
        hang = next(u for u in unique.values() if u.finding.kind is ObservedKind.HANG)
        assert hang.first_detection_time == 10.0  # earliest representative

    def test_unmatched_finding_has_no_bug(self):
        tester = PacketTester("D1", seed=0)
        finding = tester.verify_payload(bytes([0x5A, 0x01]))
        # Force a signature far from any canonical duration.
        from dataclasses import replace

        odd = replace(finding, duration_s=500.0)
        assert odd.match_table3() is None
