"""Tests for the specification registry — the paper's ground numbers."""

import pytest

from repro.errors import UnknownCommandClassError, UnknownCommandError
from repro.zwave.cmdclass import Cluster
from repro.zwave.registry import (
    SpecRegistry,
    proprietary_class_ids,
)
from repro.zwave.spec_data import PUBLIC_SPEC_CLASS_COUNT


class TestPaperNumbers:
    """The exact counts Sections III-B/III-C and Table IV rely on."""

    def test_public_spec_lists_122_classes(self, public_registry):
        assert len(public_registry) == PUBLIC_SPEC_CLASS_COUNT == 122

    def test_full_registry_adds_two_proprietary(self, full_registry, public_registry):
        assert len(full_registry) == len(public_registry) + 2

    def test_proprietary_ids_are_0x01_and_0x02(self):
        assert proprietary_class_ids() == (0x01, 0x02)

    def test_proprietary_absent_from_public_spec(self, public_registry):
        assert 0x01 not in public_registry
        assert 0x02 not in public_registry

    def test_proprietary_flagged_in_full_registry(self, full_registry):
        assert not full_registry.require(0x01).in_public_spec
        assert not full_registry.require(0x02).in_public_spec

    def test_controller_relevant_spec_classes_are_43(self, public_registry):
        # 43 spec classes + 2 proprietary = the 45 CMDCLs of Table V.
        assert len(public_registry.controller_relevant_ids()) == 43

    def test_controller_relevant_with_proprietary_is_45(self, full_registry):
        ids = full_registry.controller_relevant_ids(include_proprietary=True)
        assert len(ids) == 45

    def test_figure5_distribution(self, full_registry):
        from repro.analysis.report import FIGURE5_CLASS_IDS

        counts = [
            count
            for _, count in full_registry.command_distribution(FIGURE5_CLASS_IDS)
        ]
        assert counts == [23, 15, 11, 10, 8, 7, 6, 6, 5, 4, 3, 2, 2, 1, 1, 0]

    def test_proprietary_0x01_is_network_management(self, full_registry):
        cls = full_registry.require(0x01)
        assert cls.cluster is Cluster.PROPRIETARY
        assert cls.command(0x0D) is not None  # the NVM write of bugs 1-4/12
        assert cls.command_count == 20


class TestTableIIIBugSchemas:
    """Every Table III (CMDCL, CMD) pair must exist in the knowledge base."""

    @pytest.mark.parametrize(
        "cmdcl,cmd",
        [
            (0x01, 0x0D), (0x01, 0x02), (0x01, 0x04),
            (0x9F, 0x01), (0x5A, 0x01), (0x59, 0x03), (0x59, 0x05),
            (0x7A, 0x01), (0x7A, 0x03), (0x86, 0x13), (0x73, 0x04),
        ],
    )
    def test_bug_commands_defined(self, full_registry, cmdcl, cmd):
        assert full_registry.command(cmdcl, cmd) is not None


class TestLookups:
    def test_require_unknown_raises(self, public_registry):
        with pytest.raises(UnknownCommandClassError):
            public_registry.require(0x01)

    def test_command_unknown_raises(self, full_registry):
        with pytest.raises(UnknownCommandError):
            full_registry.command(0x20, 0x99)

    def test_by_name(self, full_registry):
        assert full_registry.by_name("BASIC").id == 0x20
        with pytest.raises(UnknownCommandClassError):
            full_registry.by_name("NOPE")

    def test_contains_and_iter_sorted(self, public_registry):
        assert 0x20 in public_registry
        ids = [c.id for c in public_registry]
        assert ids == sorted(ids)

    def test_class_ids_sorted(self, public_registry):
        ids = public_registry.class_ids()
        assert ids == tuple(sorted(ids))

    def test_duplicate_rejected(self, public_registry):
        cls = public_registry.require(0x20)
        with pytest.raises(ValueError):
            SpecRegistry([cls, cls])

    def test_cluster_query(self, public_registry):
        slave = public_registry.cluster(Cluster.SLAVE_ONLY)
        assert all(c.cluster is Cluster.SLAVE_ONLY for c in slave)
        assert len(slave) == 79


class TestPrioritization:
    def test_orders_by_command_count_desc(self, full_registry):
        prio = full_registry.prioritize([0x20, 0x34, 0x5A])
        assert prio == (0x34, 0x20, 0x5A)

    def test_tie_broken_by_id(self, full_registry):
        # 0x59 and 0x62 both define 6 commands.
        prio = full_registry.prioritize([0x62, 0x59])
        assert prio == (0x59, 0x62)

    def test_testbed_queue_puts_bug_classes_early(self, full_registry, public_registry):
        candidates = list(public_registry.controller_relevant_ids()) + [0x01, 0x02]
        prio = full_registry.prioritize(candidates)
        assert prio[0] == 0x34
        assert prio[1] == 0x01  # the proprietary class with 7 zero-days
        assert prio.index(0x9F) < 10
        assert prio.index(0x7A) < 10
        assert prio.index(0x59) < 10

    def test_ids_missing_from_registry_go_last(self, public_registry):
        prio = public_registry.prioritize([0x01, 0x20])
        assert prio == (0x20, 0x01)

    def test_command_count_lookup(self, full_registry):
        assert full_registry.command_count(0x34) == 23
        assert full_registry.command_count(0x24) == 0
