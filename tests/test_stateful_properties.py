"""Hypothesis stateful testing: the NVM node table under arbitrary op mixes."""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.errors import NodeMemoryError
from repro.simulator.memory import NodeRecord, NodeTable


class NodeTableMachine(RuleBasedStateMachine):
    """Random interleavings of sanctioned and raw (attack-path) operations.

    The model is a plain dict; the invariants assert the table never
    diverges from it, snapshots stay immutable, and diff() against the
    model snapshot is always empty.
    """

    def __init__(self):
        super().__init__()
        self.table = NodeTable(own_node_id=1)
        self.model = {}

    node_ids = st.integers(min_value=2, max_value=40)

    @rule(node_id=node_ids, wakeup=st.one_of(st.none(), st.integers(min_value=60, max_value=86400)))
    def sanctioned_add(self, node_id, wakeup):
        record = NodeRecord(node_id=node_id, wakeup_interval=wakeup)
        if node_id in self.model:
            with pytest.raises(NodeMemoryError):
                self.table.add(record)
        else:
            self.table.add(record)
            self.model[node_id] = record

    @rule(node_id=node_ids)
    def sanctioned_remove(self, node_id):
        if node_id in self.model:
            self.table.remove(node_id)
            del self.model[node_id]
        else:
            with pytest.raises(NodeMemoryError):
                self.table.remove(node_id)

    @rule(node_id=node_ids, basic=st.integers(min_value=1, max_value=4))
    def raw_write(self, node_id, basic):
        record = NodeRecord(node_id=node_id, basic=basic)
        self.table.raw_write(record)
        self.model[node_id] = record

    @rule(node_id=node_ids)
    def raw_delete(self, node_id):
        existed = self.table.raw_delete(node_id)
        assert existed == (node_id in self.model)
        self.model.pop(node_id, None)

    @rule(node_id=node_ids)
    def raw_clear_wakeup(self, node_id):
        record = self.model.get(node_id)
        cleared = self.table.raw_clear_wakeup(node_id)
        expected = record is not None and record.wakeup_interval is not None
        assert cleared == expected
        if cleared:
            from dataclasses import replace

            self.model[node_id] = replace(record, wakeup_interval=None)

    @rule()
    def snapshot_restore_roundtrip(self):
        snapshot = self.table.snapshot()
        self.table.raw_overwrite_all([NodeRecord(node_id=200, name="fake")])
        self.table.restore(snapshot)

    @invariant()
    def table_matches_model(self):
        assert set(self.table.node_ids()) == set(self.model)
        for node_id, record in self.model.items():
            assert self.table.get(node_id) == record

    @invariant()
    def diff_against_own_snapshot_is_empty(self):
        snapshot = self.table.snapshot()
        assert NodeTable.diff(snapshot, self.table.snapshot()) == []


NodeTableMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestNodeTableStateful = NodeTableMachine.TestCase
