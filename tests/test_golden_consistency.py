"""Cross-file consistency of the committed golden pins (ISSUE 10).

Every golden file pins its own artefact; this suite pins the *pins* and
the relationships between files, entirely from the committed bytes — no
campaigns run here, so it stays fast and catches silent regeneration:

* the SHA-256 of each campaign/session wire pin is itself pinned, so a
  ``write_golden()`` run that changes bytes cannot slip through review
  without this file changing too;
* every embedded wire document carries the current ``WIRE_VERSION``;
* ``perf_golden``'s merged metrics document is recomputed from its own
  embedded per-device wires — the two sections can never diverge;
* ``serve_golden``'s checkpoint lines re-verify against the live
  ``record_crc``, so the CRC convention and the golden agree;
* ``BENCH_core.json`` keeps the engine-migration acceptance locked in:
  the campaign_fps ratio must stay at least 2x better than the retired
  per-closure engine's committed 1831.5384.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.core.resultio import (
    WIRE_VERSION,
    campaign_from_wire,
    loads_wire,
    require_wire_version,
)
from repro.obs.export import snapshot_to_document
from repro.obs.metrics import merge_snapshots
from repro.serve.checkpoint import record_crc

DATA = Path(__file__).resolve().parent / "data"
BENCH = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines" / "BENCH_core.json"

#: SHA-256 of the campaign wire text pinned per device in perf_golden.json.
PERF_WIRE_SHA256 = {
    "D1": "bd930b437b3daedf40a66ba4a1b356a65321956dbf64406ba0b3222968459ebf",
    "D2": "21196eea1d23e55a49edb9395f14bcc0f6eec43993f978dd567d5b27c70bfc89",
}

#: The wire_sha256 pins session_golden.json carries per device.
SESSION_WIRE_SHA256 = {
    "D1": "b625875043cca0867774def1917e7e84cbd0de94aa3ec2ab35cfbeea7389229d",
    "D2": "cac80ff329e72faae2e68bcb53ddb0df6f31296360344feb5d0b419398dfb2a8",
}

#: The retired legacy engine's committed campaign_fps ratio; the batched
#: engine's baseline must stay at least 2x below it.
LEGACY_CAMPAIGN_FPS_RATIO = 1831.5384


def _json_documents(path):
    """Parse a golden file holding one or more concatenated JSON docs."""
    text = path.read_text()
    decoder = json.JSONDecoder()
    documents, index = [], 0
    while index < len(text) and text[index:].strip():
        document, end = decoder.raw_decode(text, index)
        documents.append(document)
        index = end
        while index < len(text) and text[index] in " \n":
            index += 1
    return documents


@pytest.fixture(scope="module")
def perf_golden():
    return json.loads((DATA / "perf_golden.json").read_text())


@pytest.fixture(scope="module")
def session_golden():
    return _json_documents(DATA / "session_golden.json")


@pytest.fixture(scope="module")
def serve_golden():
    return json.loads((DATA / "serve_golden.json").read_text())


@pytest.fixture(scope="module")
def bench_baseline():
    return json.loads(BENCH.read_text())


class TestWireShaPins:
    def test_perf_golden_wire_sha_pins(self, perf_golden):
        assert set(perf_golden["wire"]) == set(PERF_WIRE_SHA256)
        for device, wire_text in perf_golden["wire"].items():
            digest = hashlib.sha256(wire_text.encode("utf-8")).hexdigest()
            assert digest == PERF_WIRE_SHA256[device], device

    def test_session_golden_wire_sha_pins(self, session_golden):
        found = {doc["device"]: doc["wire_sha256"] for doc in session_golden}
        assert found == SESSION_WIRE_SHA256

    def test_all_sha_pins_are_distinct(self):
        pins = list(PERF_WIRE_SHA256.values()) + list(SESSION_WIRE_SHA256.values())
        assert len(set(pins)) == len(pins)


class TestWireVersions:
    def test_perf_golden_wires_carry_current_version(self, perf_golden):
        for device, wire_text in perf_golden["wire"].items():
            wire = loads_wire(wire_text)
            require_wire_version(wire, f"perf_golden wire {device}")

    def test_serve_golden_wire_version(self, serve_golden):
        assert serve_golden["wire_version"] == WIRE_VERSION
        for spec in serve_golden["specs"]:
            require_wire_version(spec["wire"], f"serve_golden spec {spec['job_id']}")


class TestInternalCrossChecks:
    def test_perf_golden_metrics_match_embedded_wires(self, perf_golden):
        """The merged metrics document must equal the merge of the
        metrics snapshots inside the file's own wire texts."""
        devices = perf_golden["meta"]["devices"].split(",")
        results = [
            campaign_from_wire(loads_wire(perf_golden["wire"][device]))
            for device in devices
        ]
        merged = results[0].metrics
        for result in results[1:]:
            merged = merge_snapshots(merged, result.metrics)
        recomputed = snapshot_to_document(merged, meta={"kind": "perf-golden"})
        assert recomputed == perf_golden["metrics"]

    def test_serve_checkpoint_lines_crc_verify(self, serve_golden):
        for line in serve_golden["checkpoint_lines"]:
            wrapper = json.loads(line)
            assert wrapper["crc"] == record_crc(wrapper["record"]), line

    def test_serve_oracle_sha_shape(self, serve_golden):
        digest = serve_golden["oracle_sha256"]
        assert len(digest) == 64 and int(digest, 16) >= 0

    def test_fixture_family_coherent(self, perf_golden, session_golden):
        """The golden suite is one seed-0 fixture family."""
        assert perf_golden["meta"]["seed"] == 0
        assert perf_golden["meta"]["duration_s"] == 600.0
        assert perf_golden["meta"]["mode"] == "FULL"
        assert [doc["seed"] for doc in session_golden] == [0, 0]
        assert [doc["device"] for doc in session_golden] == ["D1", "D2"]


class TestBenchBaseline:
    def test_workload_checksums_are_pinned_and_nonzero(self, bench_baseline):
        results = bench_baseline["results"]
        assert results["campaign_fps"]["checksum"] == 3282250253
        for name, entry in results.items():
            assert isinstance(entry["checksum"], int) and entry["checksum"] != 0, name

    def test_campaign_fps_keeps_the_2x_migration_win(self, bench_baseline):
        ratio = bench_baseline["results"]["campaign_fps"]["ratio_to_calibration"]
        assert ratio <= LEGACY_CAMPAIGN_FPS_RATIO / 2, (
            f"campaign_fps baseline ratio {ratio} lost the 2x win over the "
            f"retired engine ({LEGACY_CAMPAIGN_FPS_RATIO})"
        )
