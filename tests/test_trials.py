"""Tests for multi-trial orchestration and aggregation."""

import pytest

from repro.core.campaign import Mode
from repro.core.trials import TrialSummary, run_trials


@pytest.fixture(scope="module")
def three_trials():
    # Three 20-minute trials keep the test fast while exercising the
    # aggregation across distinct seeds.
    return run_trials("D1", Mode.FULL, n_trials=3, duration=1200.0, base_seed=0)


class TestRunTrials:
    def test_runs_requested_trials(self, three_trials):
        assert three_trials.n_trials == 3

    def test_seeds_differ_across_trials(self, three_trials):
        packet_counts = {t.fuzz.packets_sent for t in three_trials.trials}
        bug_logs = {
            tuple(r.payload_hex for r in t.fuzz.bug_log) for t in three_trials.trials
        }
        # Different seeds produce different random tails.
        assert len(bug_logs) > 1 or len(packet_counts) > 1

    def test_core_bugs_found_in_every_trial(self, three_trials):
        # The CMDCL 0x01 bugs land in the first few minutes of every trial.
        assert {1, 2, 3, 4, 5, 12} <= set(three_trials.intersection_bug_ids)

    def test_union_superset_of_intersection(self, three_trials):
        assert set(three_trials.intersection_bug_ids) <= set(three_trials.union_bug_ids)

    def test_unique_counts_and_mean(self, three_trials):
        counts = three_trials.unique_counts
        assert len(counts) == 3
        assert three_trials.mean_unique == pytest.approx(sum(counts) / 3)

    def test_timing_stats_shape(self, three_trials):
        stats = three_trials.timing_stats()
        assert stats
        by_id = {s.bug_id: s for s in stats}
        assert by_id[5].hits == 3
        assert by_id[5].mean_time > 0
        assert by_id[5].stdev_time >= 0.0

    def test_render_contains_key_lines(self, three_trials):
        text = three_trials.render()
        assert "3 x 0h trials" in text
        assert "found in every trial" in text
        assert "#05" in text


class TestEmptySummary:
    def test_zero_trials(self):
        summary = TrialSummary("D1", Mode.FULL, duration=0.0)
        assert summary.mean_unique == 0.0
        assert summary.union_bug_ids == ()
        assert summary.intersection_bug_ids == ()
        assert summary.timing_stats() == []
