"""Tests for exclusion ceremonies, controller replication, and
multi-network coexistence on one shared medium."""

import random

import pytest

from repro.errors import SimulatorError
from repro.simulator.controller import VirtualController
from repro.simulator.inclusion import (
    ExclusionCeremony,
    InclusionCeremony,
    JoiningDevice,
    replicate_to_secondary,
)
from repro.simulator.testbed import build_sut, supported_cmdcls
from repro.zwave.constants import Region, TransportMode
from repro.zwave.frame import ZWaveFrame
from repro.zwave.nif import BasicDeviceClass, GenericDeviceClass, NodeInfo


def sensor_device(name="sensor", seed=3):
    return JoiningDevice(
        name,
        NodeInfo(
            basic=BasicDeviceClass.SLAVE,
            generic=GenericDeviceClass.SENSOR_BINARY,
            listed_cmdcls=(0x20, 0x30, 0x86),
        ),
        rng=random.Random(seed),
    )


class TestExclusion:
    @pytest.fixture
    def joined(self):
        sut = build_sut("D1", seed=31, traffic=False)
        device = sensor_device()
        sut.medium.attach("sensor", (5.0, 5.0), Region.US, lambda r: None)
        InclusionCeremony(sut.controller, sut.medium, sut.clock).include(
            device, "sensor", TransportMode.NO_SECURITY
        )
        return sut, device

    def test_exclusion_removes_pairing(self, joined):
        sut, device = joined
        node_id = device.node_id
        ceremony = ExclusionCeremony(sut.controller, sut.medium, sut.clock)
        removed = ceremony.exclude(device, "sensor")
        assert removed == node_id
        assert node_id not in sut.controller.nvm
        assert not device.included
        assert device.network_key is None

    def test_cannot_exclude_unjoined(self, joined):
        sut, _ = joined
        fresh = sensor_device("fresh", 9)
        ceremony = ExclusionCeremony(sut.controller, sut.medium, sut.clock)
        with pytest.raises(SimulatorError):
            ceremony.exclude(fresh, "sensor")

    def test_reinclusion_after_exclusion(self, joined):
        sut, device = joined
        ExclusionCeremony(sut.controller, sut.medium, sut.clock).exclude(
            device, "sensor"
        )
        result = InclusionCeremony(sut.controller, sut.medium, sut.clock).include(
            device, "sensor", TransportMode.NO_SECURITY
        )
        assert device.included
        assert result.node_id in sut.controller.nvm


class TestReplication:
    def test_node_table_copied_to_secondary(self):
        sut = build_sut("D1", seed=32, traffic=False)
        secondary = VirtualController(
            name="secondary",
            home_id=sut.profile.home_id,
            clock=sut.clock,
            medium=sut.medium,
            listed_cmdcls=sut.controller.listed_cmdcls,
            supported_cmdcls=supported_cmdcls(),
            position=(3.0, 3.0),
            node_id=5,
        )
        count = replicate_to_secondary(
            sut.controller, secondary, sut.medium, sut.clock
        )
        assert count == 2
        assert secondary.nvm.node_ids() == sut.controller.nvm.node_ids()

    def test_replication_frames_sniffable(self):
        sut = build_sut("D1", seed=33, traffic=False)
        secondary = VirtualController(
            name="secondary",
            home_id=sut.profile.home_id,
            clock=sut.clock,
            medium=sut.medium,
            listed_cmdcls=sut.controller.listed_cmdcls,
            supported_cmdcls=supported_cmdcls(),
            position=(3.0, 3.0),
            node_id=5,
        )
        sut.dongle.clear_captures()
        replicate_to_secondary(sut.controller, secondary, sut.medium, sut.clock)
        transfers = [
            c.frame
            for c in sut.dongle.captures()
            if c.frame and c.frame.payload[:2] == b"\x01\x09"
        ]
        assert len(transfers) == 2


class TestCoexistence:
    """Two homes share the air; their networks must not bleed."""

    def build_pair(self):
        sut = build_sut("D1", seed=34, traffic=False)
        neighbour = VirtualController(
            name="neighbour-hub",
            home_id=0x0BADCAFE,
            clock=sut.clock,
            medium=sut.medium,
            listed_cmdcls=sut.controller.listed_cmdcls,
            supported_cmdcls=supported_cmdcls(),
            position=(12.0, 0.0),
            node_id=1,
        )
        return sut, neighbour

    def test_frames_filtered_by_home_id(self):
        sut, neighbour = self.build_pair()
        frame = ZWaveFrame(
            home_id=sut.profile.home_id, src=0x0F, dst=1, payload=b"\x86\x11"
        )
        sut.dongle.inject(frame)
        sut.clock.advance(0.2)
        assert sut.controller.stats.apl_processed == 1
        assert neighbour.stats.apl_processed == 0
        # The neighbour hears the attack, the ACK and the reply — all
        # rejected by its home-id filter.
        assert neighbour.stats.rejected_home_id >= 1

    def test_attack_on_one_home_spares_the_other(self):
        sut, neighbour = self.build_pair()
        neighbour.nvm.add(
            __import__("repro.simulator.memory", fromlist=["NodeRecord"]).NodeRecord(
                node_id=2, name="neighbour lock"
            )
        )
        attack = ZWaveFrame(
            home_id=sut.profile.home_id, src=0x0F, dst=1,
            payload=bytes([0x01, 0x0D, 0x02, 0x03]),
        )
        sut.dongle.inject(attack)
        sut.clock.advance(0.2)
        assert 2 not in sut.controller.nvm  # victim's lock removed
        assert 2 in neighbour.nvm  # neighbour untouched

    def test_passive_scan_elects_the_busier_network(self):
        from repro.core.fingerprint import PassiveScanner

        sut, neighbour = self.build_pair()
        # Only the victim network generates traffic.
        sut.controller.start_polling([2, 3], interval=20.0)
        result = PassiveScanner(sut.dongle, sut.clock).scan(120.0)
        assert result.home_id == sut.profile.home_id
