"""Tests for the Serial API substrate (host <-> USB-stick interface)."""

import pytest

from repro.errors import SimulatorError
from repro.simulator.serialapi import (
    ACK,
    FUNC_GET_VERSION,
    NAK,
    SerialFrame,
    SerialLink,
    SOF,
    TYPE_REQUEST,
    TYPE_RESPONSE,
    _split_stream,
    attach_pc_controller,
)
from repro.simulator.testbed import LOCK_NODE_ID, SWITCH_NODE_ID
from repro.zwave.frame import ZWaveFrame


@pytest.fixture
def pc(quiet_sut):
    return attach_pc_controller(quiet_sut.controller)


class TestSerialFrame:
    def test_encode_layout(self):
        raw = SerialFrame(TYPE_REQUEST, FUNC_GET_VERSION).encode()
        assert raw[0] == SOF
        assert raw[1] == 3  # LEN: type + func + checksum
        assert raw[2] == TYPE_REQUEST
        assert raw[3] == FUNC_GET_VERSION

    def test_roundtrip(self):
        frame = SerialFrame(TYPE_RESPONSE, 0x13, b"\x01\x02\x03")
        assert SerialFrame.decode(frame.encode()) == frame

    def test_checksum_rejected(self):
        raw = bytearray(SerialFrame(TYPE_REQUEST, 0x02).encode())
        raw[-1] ^= 0x01
        with pytest.raises(SimulatorError):
            SerialFrame.decode(bytes(raw))

    def test_length_mismatch_rejected(self):
        raw = bytearray(SerialFrame(TYPE_REQUEST, 0x02).encode())
        raw[1] = 9
        with pytest.raises(SimulatorError):
            SerialFrame.decode(bytes(raw))

    def test_bad_sof_rejected(self):
        with pytest.raises(SimulatorError):
            SerialFrame.decode(b"\x02\x03\x00\x02\xfe")


class TestStreamSplitting:
    def test_mixed_stream(self):
        frame = SerialFrame(TYPE_REQUEST, 0x02).encode()
        stream = bytes([ACK]) + frame + bytes([NAK]) + frame
        frames, controls = _split_stream(stream)
        assert len(frames) == 2
        assert controls == [ACK, NAK]

    def test_garbage_resync(self):
        frame = SerialFrame(TYPE_REQUEST, 0x02).encode()
        frames, _ = _split_stream(b"\xde\xad" + frame)
        assert len(frames) == 1

    def test_truncated_frame_ignored(self):
        frame = SerialFrame(TYPE_REQUEST, 0x02).encode()
        frames, _ = _split_stream(frame[:-2])
        assert frames == []


class TestSerialLink:
    def test_duplex_queues(self):
        link = SerialLink()
        link.host_write(b"abc")
        assert link.chip_read_all() == b"abc"
        link.chip_write(b"xyz")
        assert link.host_read_all() == b"xyz"
        assert link.host_read_all() == b""


class TestPCControllerClient:
    def test_get_version(self, pc):
        assert pc.get_version().startswith("Z-Wave")

    def test_memory_get_id_matches_network(self, quiet_sut, pc):
        home_id, node_id = pc.memory_get_id()
        assert home_id == quiet_sut.profile.home_id
        assert node_id == quiet_sut.controller.node_id

    def test_node_list_shows_paired_devices(self, pc):
        assert pc.node_list() == [1, LOCK_NODE_ID, SWITCH_NODE_ID]

    def test_node_protocol_info(self, pc):
        info = pc.node_protocol_info(LOCK_NODE_ID)
        assert info["generic"] == 0x40  # entry control
        assert info["security"] != 0
        assert pc.node_protocol_info(99)["basic"] == 0

    def test_send_data_reaches_the_switch(self, quiet_sut, pc):
        assert pc.send_data(SWITCH_NODE_ID, bytes([0x25, 0x01, 0xFF]))
        quiet_sut.clock.advance(0.2)
        assert quiet_sut.switch.on

    def test_send_data_to_empty_payload_fails(self, pc):
        assert not pc.send_data(SWITCH_NODE_ID, b"")

    def test_application_command_events(self, quiet_sut, pc):
        quiet_sut.switch.send_report()
        quiet_sut.clock.advance(0.2)
        events = pc.poll_events()
        assert any(src == SWITCH_NODE_ID and apl[0] == 0x25 for src, apl in events)

    def test_soft_reset_clears_hang(self, quiet_sut, pc):
        frame = ZWaveFrame(
            home_id=quiet_sut.profile.home_id, src=0x0F, dst=1,
            payload=bytes([0x5A, 0x01]),
        )
        quiet_sut.dongle.inject(frame)
        quiet_sut.clock.advance(0.1)
        assert quiet_sut.controller.hung
        pc.soft_reset()
        assert not quiet_sut.controller.hung

    def test_unknown_function_gets_empty_response(self, quiet_sut, pc):
        assert pc._transact(0x77).data == b""


class TestFigure8To11ThroughTheHostUi:
    """The paper's screenshots are this interface's output."""

    def test_memory_tampering_visible_in_node_list(self, quiet_sut, pc):
        assert pc.node_list() == [1, 2, 3]
        attack = ZWaveFrame(
            home_id=quiet_sut.profile.home_id, src=0x0F, dst=1,
            payload=bytes([0x01, 0x0D, LOCK_NODE_ID, 0x03]),  # Fig 10
        )
        quiet_sut.dongle.inject(attack)
        quiet_sut.clock.advance(0.1)
        assert pc.node_list() == [1, 3]  # the lock vanished from the UI

    def test_rogue_insertion_visible(self, quiet_sut, pc):
        attack = ZWaveFrame(
            home_id=quiet_sut.profile.home_id, src=0x0F, dst=1,
            payload=bytes([0x01, 0x0D, 200, 0x02]),  # Fig 9
        )
        quiet_sut.dongle.inject(attack)
        quiet_sut.clock.advance(0.1)
        assert 200 in pc.node_list()
        assert pc.node_protocol_info(200)["basic"] == 0x02  # rogue controller

    def test_degraded_lock_class_visible(self, quiet_sut, pc):
        attack = ZWaveFrame(
            home_id=quiet_sut.profile.home_id, src=0x0F, dst=1,
            payload=bytes([0x01, 0x0D, LOCK_NODE_ID, 0x01, 0x00, 0x10]),  # Fig 8
        )
        quiet_sut.dongle.inject(attack)
        quiet_sut.clock.advance(0.1)
        info = pc.node_protocol_info(LOCK_NODE_ID)
        assert info["basic"] == 0x04  # shown as routing slave
        assert info["security"] == 0  # S2 grant wiped
