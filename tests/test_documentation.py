"""Documentation quality gates: every public item carries a docstring."""

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

PACKAGE_ROOT = pathlib.Path(repro.__file__).parent


def _all_modules():
    names = ["repro"]
    for module in pkgutil.walk_packages([str(PACKAGE_ROOT)], prefix="repro."):
        names.append(module.name)
    return names


MODULES = _all_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    assert len(module.__doc__.strip()) > 20, f"{module_name} docstring is trivial"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its definition site
        if not (obj.__doc__ or "").strip():
            undocumented.append(name)
        elif inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_") or not inspect.isfunction(method):
                    continue
                if not (method.__doc__ or "").strip():
                    # Simple accessors and dataclass plumbing may go bare;
                    # anything longer than a few lines must be documented.
                    try:
                        source_lines = len(inspect.getsource(method).splitlines())
                    except OSError:
                        continue
                    if source_lines > 8:
                        undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module_name}: missing docstrings on {sorted(undocumented)}"
    )


def test_repo_documents_exist():
    repo_root = PACKAGE_ROOT.parent.parent
    for required in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        path = repo_root / required
        assert path.exists(), f"{required} missing"
        assert len(path.read_text()) > 1000, f"{required} is a stub"
