"""Shared fixtures for the ZCover reproduction test suite."""

from __future__ import annotations

import random

import pytest

from repro.radio.clock import SimClock
from repro.radio.medium import RadioMedium
from repro.simulator.testbed import build_sut
from repro.zwave.registry import load_full_registry, load_public_registry


@pytest.fixture(scope="session")
def public_registry():
    """The 122-class public specification registry (immutable)."""
    return load_public_registry()


@pytest.fixture(scope="session")
def full_registry():
    """The registry including the proprietary 0x01/0x02 classes."""
    return load_full_registry()


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def medium(clock):
    return RadioMedium(clock, random.Random(1234))


@pytest.fixture
def sut():
    """A default D1 system under test with live traffic."""
    return build_sut("D1", seed=7)


@pytest.fixture
def quiet_sut():
    """A D1 SUT with no background traffic (deterministic frame counts)."""
    return build_sut("D1", seed=7, traffic=False)
