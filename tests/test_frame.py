"""Tests for the Z-Wave MAC frame codec (Figure 1 layout)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ChecksumError, FrameError, FrameTooLargeError
from repro.zwave import constants as const
from repro.zwave.checksum import cs8
from repro.zwave.frame import ZWaveFrame, make_nop, make_singlecast

HOME = 0xE7DE3F3D


def make_frame(**overrides):
    fields = dict(home_id=HOME, src=2, dst=1, payload=b"\x20\x01\xff")
    fields.update(overrides)
    return ZWaveFrame(**fields)


class TestFrameLayout:
    def test_encoded_header_fields(self):
        raw = make_frame(sequence=5).encode()
        assert raw[0:4] == HOME.to_bytes(4, "big")
        assert raw[4] == 2  # SRC
        assert raw[8] == 1  # DST
        assert raw[7] == len(raw)  # LEN counts the whole frame
        assert raw[9:12] == b"\x20\x01\xff"
        assert raw[6] & 0x0F == 5  # sequence nibble in P2

    def test_checksum_is_last_byte(self):
        raw = make_frame().encode()
        assert raw[-1] == cs8(raw[:-1])

    def test_length_matches_figure1(self):
        # 9-byte header + payload + 1-byte CS.
        frame = make_frame(payload=b"\x20\x02")
        assert frame.length == 9 + 2 + 1

    def test_p1_flags(self):
        frame = make_frame(ack_request=True, routed=True, low_power=True)
        assert frame.p1 & const.P1_ACK_REQUEST_FLAG
        assert frame.p1 & const.P1_ROUTED_FLAG
        assert frame.p1 & const.P1_LOW_POWER_FLAG
        assert frame.p1 & 0x0F == const.HeaderType.SINGLECAST

    def test_apl_field_accessors(self):
        frame = make_frame(payload=b"\x62\x01\xff\x00")
        assert frame.cmdcl == 0x62
        assert frame.cmd == 0x01
        assert frame.params == b"\xff\x00"

    def test_empty_payload_accessors(self):
        frame = make_frame(payload=b"")
        assert frame.cmdcl is None
        assert frame.cmd is None
        assert frame.params == b""


class TestFrameValidation:
    def test_rejects_home_id_out_of_range(self):
        with pytest.raises(FrameError):
            make_frame(home_id=2**32)

    def test_rejects_bad_node_ids(self):
        with pytest.raises(FrameError):
            make_frame(src=256)
        with pytest.raises(FrameError):
            make_frame(dst=-1)

    def test_rejects_bad_sequence(self):
        with pytest.raises(FrameError):
            make_frame(sequence=16)

    def test_rejects_oversized_frame(self):
        with pytest.raises(FrameTooLargeError):
            make_frame(payload=b"\x00" * 60)

    def test_max_frame_is_64_bytes(self):
        frame = make_frame(payload=b"\x00" * const.MAX_APL_PAYLOAD_SIZE)
        assert len(frame.encode()) == const.MAX_MAC_FRAME_SIZE


class TestFrameDecode:
    def test_roundtrip(self):
        frame = make_frame(sequence=9)
        decoded = ZWaveFrame.decode(frame.encode())
        assert decoded.home_id == frame.home_id
        assert decoded.src == frame.src
        assert decoded.dst == frame.dst
        assert decoded.payload == frame.payload
        assert decoded.sequence == frame.sequence

    def test_too_short_raises(self):
        with pytest.raises(FrameError):
            ZWaveFrame.decode(b"\x00" * 5)

    def test_too_long_raises(self):
        with pytest.raises(FrameTooLargeError):
            ZWaveFrame.decode(b"\x00" * 65)

    def test_bad_checksum_raises(self):
        raw = bytearray(make_frame().encode())
        raw[-1] ^= 0x01
        with pytest.raises(ChecksumError):
            ZWaveFrame.decode(bytes(raw))

    def test_bad_length_raises(self):
        raw = bytearray(make_frame().encode())
        raw[7] = 60
        raw[-1] = cs8(raw[:-1])
        with pytest.raises(FrameError):
            ZWaveFrame.decode(bytes(raw))

    def test_lenient_decode_accepts_bad_checksum(self):
        raw = bytearray(make_frame().encode())
        raw[-1] ^= 0x01
        decoded = ZWaveFrame.decode(bytes(raw), verify=False)
        assert decoded.home_id == HOME

    def test_lenient_decode_accepts_bad_length(self):
        raw = bytearray(make_frame().encode())
        raw[7] = 0xFF
        decoded = ZWaveFrame.decode(bytes(raw), verify=False)
        assert decoded.src == 2

    @given(
        home=st.integers(min_value=0, max_value=2**32 - 1),
        src=st.integers(min_value=0, max_value=255),
        dst=st.integers(min_value=0, max_value=255),
        payload=st.binary(max_size=40),
        seq=st.integers(min_value=0, max_value=15),
        ack=st.booleans(),
    )
    def test_roundtrip_property(self, home, src, dst, payload, seq, ack):
        frame = ZWaveFrame(
            home_id=home, src=src, dst=dst, payload=payload, sequence=seq, ack_request=ack
        )
        decoded = ZWaveFrame.decode(frame.encode())
        assert decoded == frame or (
            decoded.home_id == home
            and decoded.src == src
            and decoded.dst == dst
            and decoded.payload == payload
            and decoded.sequence == seq
            and decoded.ack_request == ack
        )


class TestFrameHelpers:
    def test_reply_swaps_addresses(self):
        frame = make_frame(src=2, dst=1)
        reply = frame.reply(b"\x20\x03\x00")
        assert reply.src == 1
        assert reply.dst == 2
        assert reply.home_id == frame.home_id

    def test_reply_to_broadcast_uses_own_identity(self):
        frame = make_frame(src=2, dst=const.BROADCAST_NODE_ID)
        reply = frame.reply(b"")
        assert reply.dst == 2

    def test_ack_is_ack_type(self):
        ack = make_frame().ack()
        assert ack.is_ack
        assert not ack.ack_request
        assert ack.payload == b""

    def test_ack_survives_codec(self):
        ack = make_frame().ack()
        assert ZWaveFrame.decode(ack.encode()).is_ack

    def test_broadcast_detection(self):
        assert make_frame(dst=0xFF).is_broadcast
        assert not make_frame(dst=1).is_broadcast

    def test_with_payload_recomputes_checksum(self):
        frame = make_frame()
        original = frame.encode()
        swapped = frame.with_payload(b"\x20\x02")
        raw = swapped.encode()
        assert raw[-1] == cs8(raw[:-1])
        assert raw != original

    def test_make_nop_payload(self):
        nop = make_nop(HOME, 0x0F, 1)
        assert nop.payload == b"\x00"

    def test_make_singlecast(self):
        frame = make_singlecast(HOME, 3, 1, b"\x25\x02", sequence=2)
        assert frame.header_type == const.HeaderType.SINGLECAST
        assert frame.sequence == 2
