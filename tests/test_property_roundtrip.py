"""Property-based codec invariants for the frame and S2 layers.

Instead of fixed vectors, these tests sweep ~500 seeded-random inputs
through the encode/decode (and encap/decap) pipelines and assert the
invariants every codec must hold: round trips are lossless, re-encoding
is idempotent, single-byte corruption never passes verification, and the
S2 SPAN state machine stays synchronised across reordering within its
window.  Everything is plain ``random.Random`` with fixed seeds — no
third-party property-testing dependency, fully deterministic.
"""

import random

import pytest

from repro.errors import AuthenticationError, ChecksumError, FrameError, NonceError
from repro.security.s2 import ENTROPY_SIZE, S2Context, S2Encapsulated
from repro.zwave import constants as const
from repro.zwave.frame import ZWaveFrame

N_CASES = 500


def random_frame(rng: random.Random) -> ZWaveFrame:
    """Draw one arbitrary-but-valid frame from the full field space."""
    payload_len = rng.randrange(0, const.MAX_APL_PAYLOAD_SIZE + 1)
    return ZWaveFrame(
        home_id=rng.randrange(0, 0x1_0000_0000),
        src=rng.randrange(0, 0x100),
        dst=rng.randrange(0, 0x100),
        payload=bytes(rng.randrange(0x100) for _ in range(payload_len)),
        header_type=rng.choice(
            (const.HeaderType.SINGLECAST, const.HeaderType.MULTICAST,
             const.HeaderType.ACK, const.HeaderType.ROUTED)
        ),
        ack_request=rng.random() < 0.5,
        low_power=rng.random() < 0.5,
        speed_modified=rng.random() < 0.5,
        routed=rng.random() < 0.5,
        sequence=rng.randrange(0, 0x10),
    )


class TestFrameCodecProperties:
    def test_encode_decode_roundtrip(self):
        rng = random.Random(0xF4A3E)
        for _ in range(N_CASES):
            frame = random_frame(rng)
            decoded = ZWaveFrame.decode(frame.encode(), verify=True)
            assert decoded == frame
            # Every application-layer view survives the round trip too.
            assert decoded.cmdcl == frame.cmdcl
            assert decoded.cmd == frame.cmd
            assert decoded.params == frame.params

    def test_reencode_is_idempotent(self):
        rng = random.Random(0xBEEF)
        for _ in range(N_CASES):
            raw = random_frame(rng).encode()
            assert ZWaveFrame.decode(raw).encode() == raw

    def test_length_field_counts_whole_frame(self):
        rng = random.Random(3)
        for _ in range(100):
            frame = random_frame(rng)
            assert frame.length == len(frame.encode())

    def test_single_byte_corruption_never_verifies(self):
        # CS-8 is a byte-wise XOR: any single-byte change must be caught
        # by the checksum (or first by the LEN consistency check).
        rng = random.Random(0xC0DE)
        for _ in range(N_CASES):
            raw = bytearray(random_frame(rng).encode())
            index = rng.randrange(len(raw))
            flip = rng.randrange(1, 0x100)
            raw[index] ^= flip
            with pytest.raises((ChecksumError, FrameError)):
                ZWaveFrame.decode(bytes(raw), verify=True)

    def test_lenient_decode_accepts_corruption(self):
        # The sniffer path must show malformed frames rather than drop
        # them — same corruption, verify=False, no exception.
        rng = random.Random(0xD15C)
        for _ in range(200):
            raw = bytearray(random_frame(rng).encode())
            raw[rng.randrange(len(raw))] ^= rng.randrange(1, 0x100)
            # LEN corruption may shear the payload, but decoding succeeds.
            ZWaveFrame.decode(bytes(raw), verify=False)


def s2_pair(seed: int):
    """Two S2 contexts sharing a key with SPANs established both ways."""
    rng = random.Random(seed)
    key = bytes(rng.randrange(0x100) for _ in range(16))
    alice = S2Context(key, node_id=1, rng=random.Random(seed + 1))
    bob = S2Context(key, node_id=2, rng=random.Random(seed + 2))
    ea = alice.generate_entropy(2)
    eb = bob.generate_entropy(1)
    alice.establish_span(2, ea, eb, inbound=False)
    bob.establish_span(1, ea, eb, inbound=True)
    bob.establish_span(1, eb, ea, inbound=False)
    alice.establish_span(2, eb, ea, inbound=True)
    return alice, bob, rng


class TestS2EncapsulationProperties:
    def test_encap_decap_roundtrip(self):
        alice, bob, rng = s2_pair(101)
        for _ in range(N_CASES):
            plaintext = bytes(
                rng.randrange(0x100) for _ in range(rng.randrange(0, 40))
            )
            encap = alice.encapsulate(plaintext, peer=2, src=1, dst=2,
                                      home_id=0xC0FFEE00)
            assert bob.decapsulate(encap, peer=1, src=1, dst=2,
                                   home_id=0xC0FFEE00) == plaintext

    def test_wire_codec_roundtrip(self):
        alice, _, rng = s2_pair(202)
        for _ in range(200):
            encap = alice.encapsulate(
                bytes(rng.randrange(0x100) for _ in range(rng.randrange(0, 40))),
                peer=2, src=1, dst=2, home_id=0xC0FFEE00,
            )
            assert S2Encapsulated.decode(encap.encode()) == encap

    def test_tampered_blob_never_decrypts(self):
        alice, bob, rng = s2_pair(303)
        for _ in range(100):
            encap = alice.encapsulate(b"lock the door", peer=2, src=1, dst=2,
                                      home_id=0xC0FFEE00)
            blob = bytearray(encap.blob)
            blob[rng.randrange(len(blob))] ^= rng.randrange(1, 0x100)
            bad = S2Encapsulated(encap.seq_no, encap.extensions, bytes(blob))
            with pytest.raises((AuthenticationError, NonceError)):
                bob.decapsulate(bad, peer=1, src=1, dst=2, home_id=0xC0FFEE00)
            # The failed attempt must not desynchronise the SPAN.
            good = alice.encapsulate(b"still in sync", peer=2, src=1, dst=2,
                                     home_id=0xC0FFEE00)
            assert bob.decapsulate(good, peer=1, src=1, dst=2,
                                   home_id=0xC0FFEE00) == b"still in sync"

    def test_aad_binds_the_clear_header(self):
        # Replaying a valid encapsulation under different MAC-header
        # coordinates must fail: src/dst/home-id are authenticated data.
        alice, bob, _ = s2_pair(404)
        encap = alice.encapsulate(b"unlock", peer=2, src=1, dst=2,
                                  home_id=0xC0FFEE00)
        with pytest.raises((AuthenticationError, NonceError)):
            bob.decapsulate(encap, peer=1, src=3, dst=2, home_id=0xC0FFEE00)

    def test_loss_tolerance_within_span_window(self):
        # Dropping up to SPAN_WINDOW-1 messages still decrypts the next
        # one; the window resynchronises the counter.
        for dropped in range(S2Context.SPAN_WINDOW):
            alice, bob, _ = s2_pair(500 + dropped)
            for _ in range(dropped):
                alice.encapsulate(b"lost on air", peer=2, src=1, dst=2,
                                  home_id=0xC0FFEE00)
            encap = alice.encapsulate(b"arrives", peer=2, src=1, dst=2,
                                      home_id=0xC0FFEE00)
            assert bob.decapsulate(encap, peer=1, src=1, dst=2,
                                   home_id=0xC0FFEE00) == b"arrives"

    def test_loss_beyond_window_desynchronises(self):
        alice, bob, _ = s2_pair(606)
        for _ in range(S2Context.SPAN_WINDOW + 1):
            alice.encapsulate(b"lost", peer=2, src=1, dst=2, home_id=0xC0FFEE00)
        encap = alice.encapsulate(b"too late", peer=2, src=1, dst=2,
                                  home_id=0xC0FFEE00)
        with pytest.raises(NonceError):
            bob.decapsulate(encap, peer=1, src=1, dst=2, home_id=0xC0FFEE00)

    def test_entropy_size_invariant(self):
        alice, _, _ = s2_pair(707)
        assert len(alice.generate_entropy(9)) == ENTROPY_SIZE
