"""Tests for the virtual controller firmware."""


from repro.simulator.host import HostState
from repro.simulator.memory import NodeTable
from repro.simulator.testbed import LOCK_NODE_ID, SWITCH_NODE_ID, build_sut
from repro.zwave.application import ApplicationPayload
from repro.zwave.checksum import cs8
from repro.zwave.frame import ZWaveFrame, make_nop
from repro.zwave.nif import encode_nif_request, parse_nif_report


def inject(sut, payload, src=0x0F, dst=None, settle=0.1, **frame_kwargs):
    frame = ZWaveFrame(
        home_id=sut.profile.home_id,
        src=src,
        dst=dst if dst is not None else sut.controller.node_id,
        payload=payload,
        **frame_kwargs,
    )
    sut.dongle.clear_captures()
    sut.dongle.inject(frame)
    sut.clock.advance(settle)
    return sut.dongle.captures()


class TestMacLayer:
    def test_acks_valid_singlecast(self, quiet_sut):
        captures = inject(quiet_sut, b"\x00")
        acks = [c for c in captures if c.frame and c.frame.is_ack]
        assert len(acks) == 1
        assert acks[0].frame.src == quiet_sut.controller.node_id

    def test_ignores_foreign_home_id(self, quiet_sut):
        frame = ZWaveFrame(home_id=0xDEADBEEF, src=0x0F, dst=1, payload=b"\x00")
        quiet_sut.dongle.clear_captures()
        quiet_sut.dongle.inject(frame)
        quiet_sut.clock.advance(0.1)
        assert quiet_sut.controller.stats.rejected_home_id == 1
        assert not [c for c in quiet_sut.dongle.captures() if c.frame and c.frame.is_ack]

    def test_ignores_other_destination(self, quiet_sut):
        inject(quiet_sut, b"\x00", dst=42)
        assert quiet_sut.controller.stats.rejected_dst >= 1

    def test_drops_bad_checksum(self, quiet_sut):
        raw = bytearray(make_nop(quiet_sut.profile.home_id, 0x0F, 1).encode())
        raw[-1] ^= 0x01
        quiet_sut.dongle.inject_raw(bytes(raw))
        quiet_sut.clock.advance(0.1)
        assert quiet_sut.controller.stats.rejected_checksum == 1

    def test_no_ack_when_not_requested(self, quiet_sut):
        captures = inject(quiet_sut, b"\x00", ack_request=False)
        assert not [c for c in captures if c.frame and c.frame.is_ack]

    def test_broadcast_not_acked(self, quiet_sut):
        captures = inject(quiet_sut, b"\x00", dst=0xFF)
        assert not [c for c in captures if c.frame and c.frame.is_ack]

    def test_powered_off_is_silent(self, quiet_sut):
        quiet_sut.controller.set_power(False)
        captures = inject(quiet_sut, b"\x00")
        assert captures == []
        quiet_sut.controller.set_power(True)
        captures = inject(quiet_sut, b"\x00")
        assert [c for c in captures if c.frame and c.frame.is_ack]


class TestNif:
    def test_nif_report_lists_advertised_classes(self, quiet_sut):
        captures = inject(quiet_sut, encode_nif_request().encode(), settle=0.3)
        reports = [
            parse_nif_report(ApplicationPayload.decode(c.frame.payload))
            for c in captures
            if c.frame and c.frame.payload and not c.frame.is_ack
        ]
        reports = [r for r in reports if r is not None]
        assert len(reports) == 1
        info = reports[0]
        assert info.is_controller
        assert info.listed_cmdcls == quiet_sut.controller.listed_cmdcls
        assert len(info.listed_cmdcls) == 17  # D1 lists 17 (Table IV)

    def test_listed_is_strict_subset_of_supported(self, quiet_sut):
        listed = set(quiet_sut.controller.listed_cmdcls)
        supported = set(quiet_sut.controller.supported_cmdcls)
        assert listed < supported
        assert len(supported) == 45

    def test_proprietary_classes_not_listed(self, quiet_sut):
        assert 0x01 not in quiet_sut.controller.listed_cmdcls
        assert 0x01 in quiet_sut.controller.supported_cmdcls


class TestApplicationResponses:
    def test_get_earns_report(self, quiet_sut):
        # VERSION_GET should earn a VERSION_REPORT.
        captures = inject(quiet_sut, b"\x86\x11", settle=0.3)
        payloads = [
            c.frame.payload
            for c in captures
            if c.frame and not c.frame.is_ack and c.frame.payload
        ]
        assert any(p[0] == 0x86 and p[1] == 0x12 for p in payloads)

    def test_supported_non_get_earns_busy(self, quiet_sut):
        # An unencapsulated supported class probe (no command handler).
        captures = inject(quiet_sut, b"\x85", settle=0.3)
        payloads = [
            c.frame.payload
            for c in captures
            if c.frame and not c.frame.is_ack and c.frame.payload
        ]
        assert any(p[0] == 0x22 for p in payloads)

    def test_unsupported_class_is_silent(self, quiet_sut):
        captures = inject(quiet_sut, b"\x31\x04", settle=0.3)  # sensor class
        payloads = [
            c.frame.payload
            for c in captures
            if c.frame and not c.frame.is_ack and c.frame.payload
        ]
        assert payloads == []
        assert quiet_sut.controller.stats.apl_ignored_unsupported >= 1

    def test_nop_only_acked(self, quiet_sut):
        captures = inject(quiet_sut, b"\x00", settle=0.3)
        non_ack = [c for c in captures if c.frame and not c.frame.is_ack]
        assert non_ack == []


class TestZeroDayEffects:
    def test_hang_blocks_processing_until_expiry(self, quiet_sut):
        inject(quiet_sut, bytes([0x5A, 0x01]))  # bug 7: 68 s hang
        assert quiet_sut.controller.hung
        captures = inject(quiet_sut, b"\x00")
        assert not [c for c in captures if c.frame and c.frame.is_ack]
        quiet_sut.clock.advance(70.0)
        assert not quiet_sut.controller.hung
        captures = inject(quiet_sut, b"\x00")
        assert [c for c in captures if c.frame and c.frame.is_ack]

    def test_power_cycle_clears_hang(self, quiet_sut):
        inject(quiet_sut, bytes([0x5A, 0x01]))
        quiet_sut.controller.power_cycle()
        assert not quiet_sut.controller.hung

    def test_memory_modify_degrades_lock_record(self, quiet_sut):
        before = quiet_sut.controller.nvm.snapshot()
        inject(quiet_sut, bytes([0x01, 0x0D, LOCK_NODE_ID, 0x01, 0x00, 0x10]))
        changes = NodeTable.diff(before, quiet_sut.controller.nvm.snapshot())
        assert [c.kind for c in changes] == ["modified"]
        record = quiet_sut.controller.nvm.get(LOCK_NODE_ID)
        assert record.basic == 0x04  # routing slave, Figure 8
        assert not record.secure

    def test_memory_insert_adds_rogue_controller(self, quiet_sut):
        inject(quiet_sut, bytes([0x01, 0x0D, 200, 0x02]))
        rogue = quiet_sut.controller.nvm.get(200)
        assert rogue is not None
        assert rogue.is_controller  # Figure 9

    def test_memory_insert_with_clashing_id_picks_free_slot(self, quiet_sut):
        inject(quiet_sut, bytes([0x01, 0x0D, LOCK_NODE_ID, 0x02]))
        assert len(quiet_sut.controller.nvm) == 3

    def test_memory_remove_deletes_lock(self, quiet_sut):
        inject(quiet_sut, bytes([0x01, 0x0D, LOCK_NODE_ID, 0x03]))
        assert LOCK_NODE_ID not in quiet_sut.controller.nvm  # Figure 10

    def test_memory_remove_unknown_id_hits_first_slot(self, quiet_sut):
        inject(quiet_sut, bytes([0x01, 0x0D, 0x77, 0x03]))
        assert LOCK_NODE_ID not in quiet_sut.controller.nvm

    def test_memory_overwrite_replaces_database(self, quiet_sut):
        inject(quiet_sut, bytes([0x01, 0x0D, 0x01, 0x04, 0x00, 0x10]))
        ids = quiet_sut.controller.nvm.node_ids()
        assert LOCK_NODE_ID not in ids and SWITCH_NODE_ID not in ids
        assert ids == (10, 20, 30, 200)  # Figure 11

    def test_wakeup_clear(self, quiet_sut):
        assert quiet_sut.controller.nvm.get(LOCK_NODE_ID).wakeup_interval == 3600
        inject(quiet_sut, bytes([0x01, 0x0D, LOCK_NODE_ID, 0x00]))
        assert quiet_sut.controller.nvm.get(LOCK_NODE_ID).wakeup_interval is None

    def test_host_crash_bug6(self, quiet_sut):
        inject(quiet_sut, bytes([0x9F, 0x01]))
        assert quiet_sut.host.state is HostState.CRASHED

    def test_host_dos_bug5(self, quiet_sut):
        inject(quiet_sut, bytes([0x01, 0x02]))
        assert quiet_sut.host.state is HostState.DENIED

    def test_hub_profile_lacks_pc_program_bugs(self):
        hub = build_sut("D6", seed=3, traffic=False)
        frame = ZWaveFrame(
            home_id=hub.profile.home_id, src=0x0F, dst=1, payload=bytes([0x9F, 0x01])
        )
        hub.dongle.inject(frame)
        hub.clock.advance(0.1)
        assert hub.host.state is HostState.RUNNING  # bug 6 is D1-D5 only

    def test_events_record_bug_ids(self, quiet_sut):
        inject(quiet_sut, bytes([0x5A, 0x01]))
        events = quiet_sut.controller.events()
        assert events[-1].bug_id == 7


class TestMacQuirkBehaviour:
    def test_d1_len_overrun_hangs(self):
        sut = build_sut("D1", seed=2, traffic=False)
        raw = bytearray(make_nop(sut.profile.home_id, 0x0F, 1).encode())
        raw[7] = 0xFF
        raw[-1] = cs8(raw[:-1])
        sut.dongle.inject_raw(bytes(raw))
        sut.clock.advance(0.1)
        assert sut.controller.hung
        assert sut.controller.events()[-1].quirk_id == "LEN-OVERRUN"

    def test_d3_has_no_quirks(self):
        sut = build_sut("D3", seed=2, traffic=False)
        raw = bytearray(make_nop(sut.profile.home_id, 0x0F, 1).encode())
        raw[7] = 0xFF
        raw[-1] = cs8(raw[:-1])
        sut.dongle.inject_raw(bytes(raw))
        sut.clock.advance(0.1)
        assert not sut.controller.hung


class TestPolling:
    def test_polling_generates_traffic(self, sut):
        sut.dongle.clear_captures()
        sut.clock.advance(120.0)
        assert len(sut.dongle.captures()) > 5

    def test_poll_stops_for_removed_node(self, sut):
        sut.controller.nvm.raw_delete(LOCK_NODE_ID)
        sut.controller.nvm.raw_delete(SWITCH_NODE_ID)
        sut.dongle.clear_captures()
        sut.clock.advance(120.0)
        polls = [
            c
            for c in sut.dongle.captures()
            if c.frame
            and c.frame.src == 1
            and not c.frame.is_ack
            # Transport-level replies (S2 nonce reports) are not polls.
            and c.frame.payload
            and c.frame.payload[0] != 0x9F
        ]
        assert polls == []
