"""Smoke suite: every benchmark and the perf CLI run end to end.

The figure/table benches only exercise their strict paper-value
assertions on long horizons, so the whole ``benchmarks/`` tree can be
smoke-tested at a three-minute simulated horizon; this is what keeps the
benches runnable at all between the occasional full reproduction runs.
The perf harness is checked the way CI consumes it: fast mode, canonical
JSON on stdout, schema-valid and wire-clean.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.obs.export import document_to_snapshot
from repro.perf.document import (
    SCHEMA,
    SCHEMA_VERSION,
    assert_json_clean,
    dumps_document,
    validate_document,
)
from repro.perf.workloads import WORKLOADS

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_tool(argv, env_overrides=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.update(env_overrides or {})
    return subprocess.run(
        argv, cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=1200
    )


class TestBenchmarkSuite:
    def test_all_benches_pass_at_smoke_horizon(self):
        proc = run_tool(
            [
                sys.executable,
                "-m",
                "pytest",
                "benchmarks",
                "-q",
                "-p",
                "no:cacheprovider",
                "--benchmark-disable",
            ],
            env_overrides={"ZCOVER_BENCH_HOURS": "0.05"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestPerfCli:
    def test_fast_mode_emits_canonical_schema_valid_document(self):
        proc = run_tool(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "perf",
                "--fast",
                "--repeats",
                "1",
                "--format",
                "json",
            ]
        )
        assert proc.returncode == 0, proc.stderr
        doc = json.loads(proc.stdout)
        validate_document(doc)
        assert_json_clean(doc)
        assert doc["schema"] == SCHEMA
        assert doc["schema_version"] == SCHEMA_VERSION
        assert set(doc["results"]) == set(WORKLOADS) | {"calibration"}
        # Canonical serialization: stdout is byte-for-byte re-serializable.
        assert proc.stdout == dumps_document(doc)
        # The embedded metrics snapshot is itself a valid obs document.
        document_to_snapshot(doc["metrics"])
