"""Tests for the device-class taxonomy."""


from repro.zwave.devclass import (
    BASIC_CLASS_NAMES,
    GENERIC_CLASSES,
    describe_device,
    expected_cmdcls,
    generic_class,
    is_controller_class,
)


class TestTaxonomy:
    def test_generic_ids_unique(self):
        ids = [g.id for g in GENERIC_CLASSES]
        assert len(set(ids)) == len(ids)

    def test_specific_ids_unique_within_generic(self):
        for generic in GENERIC_CLASSES:
            ids = [s.id for s in generic.specifics]
            assert len(set(ids)) == len(ids), generic.name

    def test_lookup(self):
        assert generic_class(0x40).name == "ENTRY_CONTROL"
        assert generic_class(0x40).specific(0x03).name == "SECURE_KEYPAD_DOOR_LOCK"
        assert generic_class(0xEE) is None

    def test_basic_names_cover_spec(self):
        assert set(BASIC_CLASS_NAMES) == {0x01, 0x02, 0x03, 0x04}


class TestDescribe:
    def test_full_triple(self):
        text = describe_device(0x02, 0x02, 0x07)
        assert text == "STATIC_CONTROLLER / STATIC_CONTROLLER / GATEWAY"

    def test_without_specific(self):
        assert describe_device(0x03, 0x10) == "SLAVE / BINARY_SWITCH"

    def test_unknown_generic_falls_back_to_hex(self):
        assert describe_device(0x03, 0xEE, 0x05) == "SLAVE / 0xEE / 0x05"

    def test_unknown_specific_falls_back_to_hex(self):
        assert describe_device(0x03, 0x10, 0x77).endswith("0x77")

    def test_testbed_lock_description(self):
        # D8's NIF triple as paired in the testbed.
        assert "SECURE_KEYPAD_DOOR_LOCK" in describe_device(0x03, 0x40, 0x03)


class TestExpectedCmdcls:
    def test_door_lock_expects_0x62(self):
        classes = expected_cmdcls(0x40, 0x01)
        assert 0x62 in classes
        assert 0x9F in classes  # modern locks are S2

    def test_specific_adds_to_generic(self):
        generic_only = set(expected_cmdcls(0x40))
        with_specific = set(expected_cmdcls(0x40, 0x03))
        assert generic_only < with_specific
        assert 0x4C in with_specific  # door lock logging

    def test_unknown_generic_empty(self):
        assert expected_cmdcls(0xEE) == ()

    def test_sorted_output(self):
        classes = expected_cmdcls(0x40, 0x02)
        assert list(classes) == sorted(classes)


class TestRoles:
    def test_controller_roles(self):
        assert is_controller_class(0x01)
        assert is_controller_class(0x02)
        assert not is_controller_class(0x03)
        assert not is_controller_class(0x04)
