"""Tests for the lock's access-control notifications (class 0x71)."""


from repro.simulator.testbed import LOCK_NODE_ID


def host_events(sut):
    return [e.detail for e in sut.host.events() if e.kind == "notify"]


class TestManualOperation:
    def test_manual_unlock_notifies_the_hub(self, quiet_sut):
        quiet_sut.lock.operate_manually(locked=False)
        quiet_sut.clock.advance(1.0)
        assert not quiet_sut.lock.locked
        assert quiet_sut.controller.s2_messaging.stats.received_encapsulated >= 1
        assert any("NOTIFICATION" in detail for detail in host_events(quiet_sut))

    def test_no_event_without_state_change(self, quiet_sut):
        quiet_sut.lock.operate_manually(locked=True)  # already locked
        quiet_sut.clock.advance(1.0)
        assert host_events(quiet_sut) == []

    def test_relock_after_unlock(self, quiet_sut):
        quiet_sut.lock.operate_manually(locked=False)
        quiet_sut.clock.advance(1.0)
        quiet_sut.lock.operate_manually(locked=True)
        quiet_sut.clock.advance(1.0)
        assert quiet_sut.lock.locked
        notifications = [d for d in host_events(quiet_sut) if "NOTIFICATION" in d]
        assert len(notifications) == 2


class TestRemoteOperation:
    def test_remote_unlock_emits_notification(self, quiet_sut):
        from repro.zwave.application import ApplicationPayload

        quiet_sut.controller.send_command(
            LOCK_NODE_ID, ApplicationPayload(0x62, 0x01, b"\x00"), secure=True
        )
        quiet_sut.clock.advance(2.0)
        assert not quiet_sut.lock.locked
        assert any("NOTIFICATION" in detail for detail in host_events(quiet_sut))

    def test_notification_travels_encapsulated(self, quiet_sut):
        quiet_sut.dongle.clear_captures()
        quiet_sut.lock.operate_manually(locked=False)
        quiet_sut.clock.advance(1.0)
        plaintext_notifications = [
            c.frame
            for c in quiet_sut.dongle.captures()
            if c.frame and c.frame.payload and c.frame.payload[0] == 0x71
        ]
        assert plaintext_notifications == []  # the sniffer sees only S2
