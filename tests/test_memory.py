"""Tests for the controller NVM node table and the memory oracle diffs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NodeMemoryError
from repro.simulator.memory import NodeRecord, NodeTable


def record(node_id=2, **kwargs):
    return NodeRecord(node_id=node_id, **kwargs)


class TestNodeRecord:
    def test_node_id_bounds(self):
        with pytest.raises(NodeMemoryError):
            NodeRecord(node_id=0)
        with pytest.raises(NodeMemoryError):
            NodeRecord(node_id=233)

    def test_is_controller(self):
        assert NodeRecord(node_id=5, basic=0x02).is_controller
        assert NodeRecord(node_id=5, basic=0x01).is_controller
        assert not NodeRecord(node_id=5, basic=0x03).is_controller


class TestSanctionedOperations:
    def test_add_and_get(self):
        table = NodeTable()
        table.add(record(2, name="lock"))
        assert table.get(2).name == "lock"
        assert 2 in table
        assert len(table) == 1

    def test_add_own_id_rejected(self):
        table = NodeTable(own_node_id=1)
        with pytest.raises(NodeMemoryError):
            table.add(record(1))

    def test_add_duplicate_rejected(self):
        table = NodeTable()
        table.add(record(2))
        with pytest.raises(NodeMemoryError):
            table.add(record(2))

    def test_remove(self):
        table = NodeTable()
        table.add(record(2))
        removed = table.remove(2)
        assert removed.node_id == 2
        assert 2 not in table

    def test_remove_missing_rejected(self):
        with pytest.raises(NodeMemoryError):
            NodeTable().remove(9)

    def test_update(self):
        table = NodeTable()
        table.add(record(2, wakeup_interval=3600))
        updated = table.update(2, wakeup_interval=60)
        assert updated.wakeup_interval == 60
        assert table.get(2).wakeup_interval == 60

    def test_update_missing_rejected(self):
        with pytest.raises(NodeMemoryError):
            NodeTable().update(9, name="x")

    def test_node_ids_sorted(self):
        table = NodeTable()
        for nid in (7, 2, 5):
            table.add(record(nid))
        assert table.node_ids() == (2, 5, 7)

    def test_write_count_tracks_mutations(self):
        table = NodeTable()
        table.add(record(2))
        table.update(2, name="x")
        table.remove(2)
        assert table.write_count == 3


class TestRawOperations:
    """The unchecked paths the vulnerable CMDCL 0x01 handler uses."""

    def test_raw_write_overwrites_silently(self):
        table = NodeTable()
        table.add(record(2, name="lock"))
        table.raw_write(record(2, name="rogue", basic=0x02))
        assert table.get(2).name == "rogue"

    def test_raw_delete_never_raises(self):
        table = NodeTable()
        assert not table.raw_delete(9)
        table.add(record(2))
        assert table.raw_delete(2)

    def test_raw_overwrite_all(self):
        table = NodeTable()
        table.add(record(2))
        table.raw_overwrite_all([record(10), record(200)])
        assert table.node_ids() == (10, 200)

    def test_raw_clear_wakeup(self):
        table = NodeTable()
        table.add(record(2, wakeup_interval=3600))
        assert table.raw_clear_wakeup(2)
        assert table.get(2).wakeup_interval is None
        assert not table.raw_clear_wakeup(2)  # already cleared

    def test_raw_clear_wakeup_missing_node(self):
        assert not NodeTable().raw_clear_wakeup(5)


class TestSnapshots:
    def test_snapshot_is_immutable_view(self):
        table = NodeTable()
        table.add(record(2))
        snap = table.snapshot()
        table.remove(2)
        assert len(snap) == 1

    def test_restore(self):
        table = NodeTable()
        table.add(record(2, name="lock"))
        golden = table.snapshot()
        table.raw_overwrite_all([record(99)])
        table.restore(golden)
        assert table.node_ids() == (2,)
        assert table.get(2).name == "lock"

    def test_diff_added(self):
        before = ()
        after = (record(10, basic=0x02),)
        changes = NodeTable.diff(before, after)
        assert len(changes) == 1
        assert changes[0].kind == "added"
        assert "controller" in changes[0].describe()

    def test_diff_removed(self):
        changes = NodeTable.diff((record(2),), ())
        assert changes[0].kind == "removed"
        assert "vanished" in changes[0].describe()

    def test_diff_modified(self):
        changes = NodeTable.diff(
            (record(2, basic=0x03),), (record(2, basic=0x04),)
        )
        assert changes[0].kind == "modified"
        assert "basic" in changes[0].describe()

    def test_diff_identical_is_empty(self):
        snap = (record(2), record(3))
        assert NodeTable.diff(snap, snap) == []

    def test_diff_mixed(self):
        before = (record(2), record(3))
        after = (record(3, name="renamed"), record(10))
        kinds = {c.kind for c in NodeTable.diff(before, after)}
        assert kinds == {"added", "removed", "modified"}

    @given(
        ids_a=st.sets(st.integers(min_value=2, max_value=20), max_size=6),
        ids_b=st.sets(st.integers(min_value=2, max_value=20), max_size=6),
    )
    @settings(max_examples=40)
    def test_diff_partition_property(self, ids_a, ids_b):
        before = tuple(record(i) for i in sorted(ids_a))
        after = tuple(record(i) for i in sorted(ids_b))
        changes = NodeTable.diff(before, after)
        added = {c.node_id for c in changes if c.kind == "added"}
        removed = {c.node_id for c in changes if c.kind == "removed"}
        assert added == ids_b - ids_a
        assert removed == ids_a - ids_b

    @given(ids=st.sets(st.integers(min_value=2, max_value=50), max_size=10))
    @settings(max_examples=30)
    def test_restore_inverts_any_corruption(self, ids):
        table = NodeTable()
        for i in sorted(ids):
            table.add(record(i))
        golden = table.snapshot()
        table.raw_overwrite_all([record(200, name="fake")])
        table.restore(golden)
        assert table.snapshot() == golden
