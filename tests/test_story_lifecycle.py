"""A full smart-home lifecycle exercised end-to-end in one scenario.

The "story" integration test: commission a network from scratch, run it,
attack it with ZCover, triage the findings, defend it with the IDS, and
recover — every subsystem touching every other the way a downstream user
would combine them.
"""

import random

import pytest

from repro.analysis.ids import ZWaveIDS
from repro.analysis.triage import CrashTriage
from repro.core.fuzzer import FuzzerConfig, FuzzingEngine, psm_streams
from repro.core.fingerprint import fingerprint
from repro.core.discovery import discover_unknown_properties
from repro.core.mutation import PositionSensitiveMutator
from repro.simulator.inclusion import InclusionCeremony, JoiningDevice
from repro.simulator.serialapi import attach_pc_controller
from repro.simulator.testbed import LOCK_NODE_ID, SWITCH_NODE_ID, build_sut
from repro.zwave.constants import Region, TransportMode
from repro.zwave.nif import BasicDeviceClass, GenericDeviceClass, NodeInfo
from repro.zwave.registry import load_full_registry


@pytest.fixture(scope="module")
def story():
    """Run the whole scenario once; the tests assert its chapters."""
    sut = build_sut("D1", seed=77)
    chapters = {}

    # Chapter 1: commission a third device over S2.
    sensor = JoiningDevice(
        "hall sensor",
        NodeInfo(
            basic=BasicDeviceClass.SLAVE,
            generic=GenericDeviceClass.SENSOR_BINARY,
            listed_cmdcls=(0x20, 0x30, 0x86),
        ),
        rng=random.Random(1),
    )
    sut.medium.attach("hall", (3.0, 3.0), Region.US, lambda r: None)
    ceremony = InclusionCeremony(sut.controller, sut.medium, sut.clock, random.Random(2))
    chapters["inclusion"] = ceremony.include(sensor, "hall", TransportMode.S2)

    # Chapter 2: the homeowner's PC program sees the grown network.
    pc = attach_pc_controller(sut.controller)
    chapters["node_list_before"] = pc.node_list()

    # Chapter 3: train the IDS on an hour of benign operation.
    ids = ZWaveIDS(sut.profile.home_id)
    sut.dongle.clear_captures()
    sut.clock.advance(3600.0)
    ids.train(
        [(c.timestamp, c.frame) for c in sut.dongle.drain_captures() if c.frame]
    )
    chapters["ids"] = ids

    # Chapter 4: ZCover attacks — fingerprint, discover, fuzz 10 minutes.
    props = fingerprint(sut.dongle, sut.clock)
    props = discover_unknown_properties(sut.dongle, sut.clock, props)
    chapters["props"] = props
    engine = FuzzingEngine(sut, FuzzerConfig())
    mutator = PositionSensitiveMutator(load_full_registry(), random.Random(3))
    queue = props.prioritized(load_full_registry())
    chapters["fuzz"] = engine.run(psm_streams(queue, mutator, 60.0, True), 600.0)

    # Chapter 5: triage the bug log into verified findings.
    triage = CrashTriage("D1", seed=77, minimize=False)
    chapters["triaged"] = triage.triage(chapters["fuzz"].bug_log)

    # Chapter 6: after the dust settles the network still works.
    chapters["node_list_after"] = pc.node_list()
    chapters["sut"] = sut
    return chapters


class TestStory:
    def test_inclusion_grew_the_network(self, story):
        assert story["inclusion"].node_id == 4
        assert story["node_list_before"] == [1, LOCK_NODE_ID, SWITCH_NODE_ID, 4]

    def test_discovery_found_the_hidden_classes(self, story):
        assert story["props"].proprietary == (0x01, 0x02)
        assert len(story["props"].all_cmdcls) == 45

    def test_fuzzing_found_bugs_in_ten_minutes(self, story):
        assert len(story["fuzz"].detections) >= 7

    def test_triage_confirms_real_vulnerabilities(self, story):
        bug_ids = {
            t.finding.match_table3().bug_id
            for t in story["triaged"]
            if t.finding.match_table3()
        }
        assert {5, 12} <= bug_ids  # the early CMDCL 0x01 findings
        assert all(t.stable for t in story["triaged"])

    def test_ids_flags_the_attack_traffic(self, story):
        from repro.zwave.frame import ZWaveFrame

        sut = story["sut"]
        attack = ZWaveFrame(
            home_id=sut.profile.home_id, src=0x0F, dst=1,
            payload=bytes([0x01, 0x0D, 0x02, 0x03]),
        )
        assert story["ids"].inspect(sut.clock.now, attack)

    def test_recovery_left_the_network_intact(self, story):
        # The engine's repair loop restored the node table after every
        # memory-tampering detection.
        assert story["node_list_after"] == story["node_list_before"]
        assert story["sut"].host.responsive
        assert not story["sut"].controller.hung
