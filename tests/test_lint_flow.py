"""Unit tests for the interprocedural flow engine (D2xx/W401).

Every rule is exercised on a minimal synthetic tree built from in-memory
:class:`SourceFile` objects, so each test pins exactly one behaviour of
the summarize/link/fixpoint pipeline.
"""

import json

from repro.lint.base import SourceFile
from repro.lint.flow import FlowAnalyzer, SummaryCache
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.purity import diff_manifests
from repro.lint.flow.symbols import SUMMARY_VERSION, summarize_text


def tree(files):
    return [SourceFile.from_text(rel, text) for rel, text in sorted(files.items())]


def analyze(files, **kwargs):
    analyzer = FlowAnalyzer(**kwargs)
    findings = analyzer.analyze(tree(files))
    return findings, analyzer


def rules_of(findings):
    return sorted({f.rule for f in findings})


class TestEntropyFlow:
    def test_d201_direct_seed(self):
        findings, _ = analyze(
            {"a.py": "import random\ndef entry():\n    return random.random()\n"}
        )
        assert rules_of(findings) == ["D201"]
        (finding,) = findings
        assert finding.line == 2  # at the entry point's def line
        assert "entry" in finding.message

    def test_d201_propagates_across_modules(self):
        findings, _ = analyze(
            {
                "a.py": "from b import helper\ndef entry():\n    return helper()\n",
                "b.py": "import random\ndef helper():\n    return random.random()\n",
            }
        )
        d201 = [f for f in findings if f.rule == "D201"]
        entry = [f for f in d201 if f.path == "a.py"]
        assert entry, d201
        # The witness chain names every hop down to the seed site.
        assert "entry -> helper -> b.py:3" in entry[0].message

    def test_d201_unseeded_construction_seeds_taint(self):
        findings, _ = analyze(
            {
                "a.py": (
                    "import random\n"
                    "def entry():\n"
                    "    r = random.Random()\n"
                    "    return r\n"
                )
            }
        )
        assert "D201" in rules_of(findings)

    def test_seeded_rng_is_clean(self):
        findings, _ = analyze(
            {
                "a.py": (
                    "import random\n"
                    "def entry(seed):\n"
                    "    rng = random.Random(seed)\n"
                    "    return rng.random()\n"
                )
            }
        )
        assert findings == []

    def test_entropy_owner_module_is_exempt(self):
        findings, _ = analyze(
            {
                "radio/clock.py": (
                    "import random\ndef jitter():\n    return random.random()\n"
                )
            }
        )
        assert findings == []

    def test_allow_directive_kills_the_cascade(self):
        findings, _ = analyze(
            {
                "a.py": (
                    "import random\n"
                    "def entry():\n"
                    "    return random.random()  # lint: allow[D101] -- reviewed\n"
                )
            }
        )
        assert findings == []

    def test_method_call_chain(self):
        findings, _ = analyze(
            {
                "a.py": (
                    "import random\n"
                    "class Engine:\n"
                    "    def run(self):\n"
                    "        return self._draw()\n"
                    "    def _draw(self):\n"
                    "        return random.random()\n"
                )
            }
        )
        d201 = [f for f in findings if f.rule == "D201"]
        assert any("Engine.run" in f.message for f in d201)


class TestClockFlow:
    def test_d204_direct(self):
        findings, _ = analyze(
            {"a.py": "import time\ndef entry():\n    return time.time()\n"}
        )
        assert rules_of(findings) == ["D204"]

    def test_clock_exempt_module_does_not_seed(self):
        findings, _ = analyze(
            {
                "obs/tracing.py": (
                    "import time\ndef span():\n    return time.monotonic()\n"
                )
            }
        )
        assert findings == []

    def test_wall_helper_call_seeds_at_the_caller(self):
        # The clock owner's wall_* helpers are themselves sanctioned, but
        # calling one from a non-exempt module is a wall-clock read.
        findings, _ = analyze(
            {
                "radio/clock.py": (
                    "import time\ndef wall_monotonic():\n    return time.monotonic()\n"
                ),
                "a.py": (
                    "from radio.clock import wall_monotonic\n"
                    "def entry():\n"
                    "    return wall_monotonic()\n"
                ),
            }
        )
        d204 = [f for f in findings if f.rule == "D204"]
        assert [f.path for f in d204] == ["a.py"]
        assert "wall_monotonic" in d204[0].message

    def test_sleep_is_not_a_clock_read(self):
        findings, _ = analyze(
            {"a.py": "import time\ndef entry():\n    time.sleep(0.1)\n"}
        )
        assert findings == []


class TestRngDefaults:
    UNGUARDED = (
        "def draw(rng=None):\n"
        "    return rng.random()\n"
        "def entry():\n"
        "    return draw()\n"
    )

    def test_d202_unguarded_default_exercised(self):
        findings, _ = analyze({"a.py": self.UNGUARDED})
        d202 = [f for f in findings if f.rule == "D202"]
        assert len(d202) == 1
        assert "exercised by entry" in d202[0].message

    def test_guarded_default_is_clean(self):
        findings, _ = analyze(
            {
                "a.py": (
                    "import random\n"
                    "def draw(rng=None):\n"
                    "    rng = rng or random.Random(0)\n"
                    "    return rng.random()\n"
                    "def entry():\n"
                    "    return draw()\n"
                )
            }
        )
        assert [f for f in findings if f.rule == "D202"] == []

    def test_caller_passing_rng_is_clean(self):
        findings, _ = analyze(
            {
                "a.py": (
                    "import random\n"
                    "def draw(rng=None):\n"
                    "    return rng.random()\n"
                    "def entry(seed):\n"
                    "    return draw(rng=random.Random(seed))\n"
                )
            }
        )
        assert [f for f in findings if f.rule == "D202"] == []

    def test_unseeded_default_expression(self):
        findings, _ = analyze(
            {
                "a.py": (
                    "import random\n"
                    "def draw(rng=random.Random()):\n"
                    "    return rng.random()\n"
                    "def entry():\n"
                    "    return draw()\n"
                )
            }
        )
        assert "D202" in rules_of(findings)


class TestContainerEscape:
    def test_d203_set_literal(self):
        findings, _ = analyze(
            {
                "a.py": (
                    "import random\n"
                    "def entry(seed):\n"
                    "    rng = random.Random(seed)\n"
                    "    pool = {rng}\n"
                    "    return pool\n"
                )
            }
        )
        d203 = [f for f in findings if f.rule == "D203"]
        assert len(d203) == 1
        assert d203[0].severity.value == "warning"

    def test_d203_set_add(self):
        findings, _ = analyze(
            {
                "a.py": (
                    "def entry(rng):\n"
                    "    pool = set()\n"
                    "    pool.add(rng)\n"
                    "    return pool\n"
                )
            }
        )
        assert "D203" in rules_of(findings)

    def test_list_escape_is_fine(self):
        findings, _ = analyze(
            {"a.py": "def entry(rng):\n    return [rng]\n"}
        )
        assert findings == []


class TestWireTypes:
    def test_w401_non_vocabulary_type(self):
        findings, _ = analyze(
            {
                "a.py": (
                    "class Rogue:\n"
                    "    def __init__(self):\n"
                    "        self.x = 1\n"
                    "def payload_to_wire(p):\n"
                    "    return p\n"
                    "def entry():\n"
                    "    r = Rogue()\n"
                    "    return payload_to_wire(r)\n"
                )
            }
        )
        w401 = [f for f in findings if f.rule == "W401"]
        assert len(w401) == 1
        assert "Rogue" in w401[0].message

    def test_dataclass_vocabulary_is_clean(self):
        findings, _ = analyze(
            {
                "a.py": (
                    "from dataclasses import dataclass\n"
                    "@dataclass\n"
                    "class Packet:\n"
                    "    x: int\n"
                    "def packet_to_wire(p):\n"
                    "    return p\n"
                    "def entry():\n"
                    "    p = Packet(1)\n"
                    "    return packet_to_wire(p)\n"
                )
            }
        )
        assert [f for f in findings if f.rule == "W401"] == []


class TestEntryPoints:
    def test_entry_modules_scope_the_verdicts(self):
        files = {
            "core/campaign.py": (
                "import random\ndef run():\n    return random.random()\n"
            ),
            "util.py": "import random\ndef helper():\n    return random.random()\n",
        }
        findings, analyzer = analyze(files)
        d201 = [f for f in findings if f.rule == "D201"]
        # Only the entry module's function is judged; util.helper is not
        # an entry point once a real entry module exists in the tree.
        assert [f.path for f in d201] == ["core/campaign.py"]
        assert list(analyzer.manifest["entry_points"]) == [
            "core/campaign.py::run"
        ]

    def test_private_functions_are_not_entries(self):
        findings, analyzer = analyze(
            {"a.py": "import random\ndef _helper():\n    return random.random()\n"}
        )
        assert findings == []
        assert analyzer.manifest["entry_points"] == {}


class TestCallGraph:
    def test_import_resolution_and_edges(self):
        sources = tree(
            {
                "a.py": "from b import f\ndef g():\n    return f()\n",
                "b.py": "def f():\n    return 1\n",
            }
        )
        graph = CallGraph({s.rel: summarize_text(s.rel, s.text) for s in sources})
        assert graph.edges["a.py::g"][0][0] == "b.py::f"
        assert graph.redges["b.py::f"][0][0] == "a.py::g"

    def test_typed_receiver_resolution(self):
        sources = tree(
            {
                "a.py": (
                    "from b import Engine\n"
                    "def g():\n"
                    "    e = Engine()\n"
                    "    return e.step()\n"
                ),
                "b.py": (
                    "class Engine:\n"
                    "    def step(self):\n"
                    "        return 1\n"
                ),
            }
        )
        graph = CallGraph({s.rel: summarize_text(s.rel, s.text) for s in sources})
        callees = {c for c, _, _ in graph.edges["a.py::g"]}
        assert "b.py::Engine.step" in callees

    def test_inherited_method_resolution(self):
        sources = tree(
            {
                "a.py": (
                    "class Base:\n"
                    "    def step(self):\n"
                    "        return 1\n"
                    "class Child(Base):\n"
                    "    def run(self):\n"
                    "        return self.step()\n"
                ),
            }
        )
        graph = CallGraph({s.rel: summarize_text(s.rel, s.text) for s in sources})
        callees = {c for c, _, _ in graph.edges["a.py::Child.run"]}
        assert "a.py::Base.step" in callees


class TestSummaryCache:
    def test_roundtrip_and_hits(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = SummaryCache(path)
        summary = summarize_text("a.py", "def f():\n    return 1\n")
        cache.put("a.py", "def f():\n    return 1\n", summary)
        assert cache.save()
        warm = SummaryCache(path)
        assert warm.get("a.py", "def f():\n    return 1\n") == summary
        assert warm.hits == 1

    def test_content_change_misses(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = SummaryCache(path)
        cache.put("a.py", "x = 1\n", summarize_text("a.py", "x = 1\n"))
        cache.save()
        warm = SummaryCache(path)
        assert warm.get("a.py", "x = 2\n") is None
        assert warm.misses == 1

    def test_version_bump_invalidates(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = SummaryCache(path)
        cache.put("a.py", "x = 1\n", summarize_text("a.py", "x = 1\n"))
        cache.save()
        raw = json.loads(path.read_text(encoding="utf-8"))
        raw["summary_version"] = SUMMARY_VERSION - 1
        path.write_text(json.dumps(raw), encoding="utf-8")
        cold = SummaryCache(path)
        assert cold.entries == {}

    def test_corrupt_cache_starts_cold(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json", encoding="utf-8")
        cache = SummaryCache(path)
        assert cache.entries == {}

    def test_analyzer_uses_the_cache(self, tmp_path):
        path = tmp_path / "cache.json"
        files = {"a.py": "import time\ndef entry():\n    return time.time()\n"}
        first, a1 = analyze(files, cache_path=path)
        second, a2 = analyze(files, cache_path=path)
        assert a1.cache_stats == {"hits": 0, "misses": 1}
        assert a2.cache_stats == {"hits": 1, "misses": 0}
        assert [f.sort_key for f in first] == [f.sort_key for f in second]


class TestManifest:
    def test_drift_detection(self):
        clean = {"a.py": "def entry():\n    return 1\n"}
        dirty = {"a.py": "import time\ndef entry():\n    return time.time()\n"}
        _, before = analyze(clean)
        _, after = analyze(dirty)
        drift = diff_manifests(before.manifest, after.manifest)
        assert any("pure-given-seed -> clock-tainted" in line for line in drift)
        assert diff_manifests(before.manifest, before.manifest) == []

    def test_manifest_counts(self):
        _, analyzer = analyze(
            {
                "a.py": (
                    "import time\n"
                    "def clean():\n"
                    "    return 1\n"
                    "def dirty():\n"
                    "    return time.time()\n"
                )
            }
        )
        summary = analyzer.manifest["summary"]
        assert summary["entry_points"] == 2
        assert summary["pure"] == 1
        assert summary["tainted"] == 1
        assert analyzer.manifest["tainted_entry_points"] == ["a.py::dirty"]
