"""Seeded property suite for the coverage-guided scheduler (ISSUE 6).

~500 generated cases across four properties:

* **purity** — the scheduler is a pure function of (coverage snapshot,
  seed): identical feedback gives identical energy vectors and identical
  decision streams (250 seeds);
* **corpus order-independence** — the canonical corpus view never
  depends on insertion order (120 seeds + a scheduler-level check);
* **wire fixpoint** — the v4 ``scheduler``/``scheduler_trace`` fields
  survive ``campaign_to_wire``/``campaign_from_wire`` byte-for-byte
  (120 seeds);
* **serial vs workers 2** — a ``--scheduler coverage`` trial series is
  byte-identical at every worker count.

Plus the satellite-3 regression pin: static prioritisation uses the
explicit total sort key of :func:`repro.core.mutation.static_priority_key`
— never dict/set iteration order — and the mutation/scheduler modules
stay clean under the D103/D104 determinism lint rules.
"""

import random
from pathlib import Path

import pytest

from repro.core.campaign import Mode, CampaignResult
from repro.core.fuzzer import FuzzResult
from repro.core.mutation import (
    PositionSensitiveMutator,
    prioritize_static,
    static_priority_key,
)
from repro.core.resultio import campaign_to_wire, campaign_from_wire, dumps_wire
from repro.core.scheduler import (
    PROBE_FACTOR,
    REASON_PROBE,
    SCHEDULERS,
    CoverageScheduler,
    canonical_corpus,
)
from repro.core.trials import run_trials
from repro.obs.metrics import MetricsCollector
from repro.zwave.registry import load_full_registry

PURITY_SEEDS = 250
CORPUS_SEEDS = 120
WIRE_SEEDS = 120

#: A small high-signal queue so 250 purity cases stay fast; the classes
#: span rich (0x9F, 0x72), mid (0x5A, 0x59) and lean (0x20) schemas.
QUEUE_CMDCLS = (0x9F, 0x72, 0x86, 0x5A, 0x59, 0x73, 0x20)


@pytest.fixture(scope="module")
def registry():
    """The full protocol knowledge every campaign schedules against."""
    return load_full_registry()


@pytest.fixture(scope="module")
def mutator(registry):
    """One shared mutator: its prefix cache is pure in (registry, cmdcl)."""
    return PositionSensitiveMutator(registry, random.Random(0))


def _seeded_collector(registry, seed):
    """A collector whose coverage bitmap is a pure function of *seed*."""
    rng = random.Random(seed)
    collector = MetricsCollector()
    for cmdcl in QUEUE_CMDCLS:
        cls = registry.get(cmdcl)
        if cls is None:
            continue
        for cmd_id in cls.command_ids():
            if rng.random() < 0.5:
                collector.cover(cmdcl, cmd_id)
    return collector


def _scheduler(registry, mutator, collector, seed):
    """A scheduler over the fixture queue with the given feedback state."""
    queue = prioritize_static(registry, QUEUE_CMDCLS)
    return CoverageScheduler(queue, registry, collector, mutator, seed)


class TestSchedulerPurity:
    """Same (coverage snapshot, seed) ⇒ same energy vector and decisions."""

    @pytest.mark.parametrize("seed", range(PURITY_SEEDS))
    def test_energy_and_decisions_are_pure(self, registry, mutator, seed):
        """Two schedulers fed identical state agree on every output."""
        left = _scheduler(registry, mutator, _seeded_collector(registry, seed), seed)
        right = _scheduler(registry, mutator, _seeded_collector(registry, seed), seed)
        assert left.energy_vector() == right.energy_vector()
        for _ in range(10):
            a, b = left.next_decision(), right.next_decision()
            assert (a.cmdcl, a.window_s, a.reason) == (b.cmdcl, b.window_s, b.reason)

    def test_probe_sweep_covers_the_whole_queue_first(self, registry, mutator):
        """Phase 1 probes every class once, in static priority order."""
        sched = _scheduler(registry, mutator, MetricsCollector(), 0)
        decisions = [sched.next_decision() for _ in range(len(sched.queue))]
        assert tuple(d.cmdcl for d in decisions) == sched.queue
        assert all(d.reason == REASON_PROBE for d in decisions)
        assert all(d.window_s == 60.0 * PROBE_FACTOR for d in decisions)

    def test_energy_vector_never_uses_container_order(self, registry, mutator):
        """Tied scores break on static queue position, an explicit key."""
        sched = _scheduler(registry, mutator, MetricsCollector(), 0)
        scores = sched.energy_vector()
        assert set(scores) == set(sched.queue)
        for _ in range(len(sched.queue)):
            sched.next_decision()  # drain the probe sweep
        best = sched.next_decision()
        tied = [c for c in sched.queue if scores[c] == scores[best.cmdcl]]
        assert best.cmdcl == min(tied, key=lambda c: sched.queue.index(c))


class TestCorpusOrderIndependence:
    """The canonical corpus read never depends on insertion order."""

    @pytest.mark.parametrize("seed", range(CORPUS_SEEDS))
    def test_canonical_corpus_is_permutation_invariant(self, seed):
        """Any two insertion orders produce the same canonical view."""
        rng = random.Random(seed)
        payloads = [
            bytes(rng.randrange(256) for _ in range(rng.randrange(2, 8)))
            for _ in range(rng.randrange(1, 12))
        ]
        shuffled = list(payloads)
        rng.shuffle(shuffled)
        assert canonical_corpus(payloads) == canonical_corpus(shuffled)
        assert canonical_corpus(payloads) == canonical_corpus(payloads + payloads)

    def test_scheduler_corpus_reads_are_order_independent(self, registry, mutator):
        """Two schedulers remembering the same frames in opposite orders
        re-mutate the same seeds."""
        from repro.core.mutation import MutationOperator, TestCase
        from repro.zwave.application import ApplicationPayload

        cases = [
            TestCase(ApplicationPayload(0x5A, cmd, bytes([cmd])), MutationOperator.SEED, 1)
            for cmd in range(1, 7)
        ]
        left = _scheduler(registry, mutator, MetricsCollector(), 0)
        right = _scheduler(registry, mutator, MetricsCollector(), 0)
        for case in cases:
            left._remember(0x5A, case)
        for case in reversed(cases):
            right._remember(0x5A, case)
        assert left.corpus_payloads(0x5A) == right.corpus_payloads(0x5A)
        assert left.corpus_size() == right.corpus_size()


def _synthetic_result(seed):
    """A minimal campaign result with seeded scheduler wire fields."""
    rng = random.Random(seed)
    scheduler = rng.choice(SCHEDULERS)
    trace = tuple(
        (rng.randrange(256), round(rng.uniform(10.0, 150.0), 6),
         rng.choice(("probe", "explore", "exploit")))
        for _ in range(rng.randrange(0, 20))
    )
    return CampaignResult(
        device="D1",
        mode=Mode.FULL,
        duration=600.0,
        properties=None,
        fuzz=FuzzResult(),
        scheduler=scheduler,
        scheduler_trace=trace if scheduler == "coverage" else (),
    )


class TestWireFixpoint:
    """Wire v4 scheduler fields round-trip byte-for-byte."""

    @pytest.mark.parametrize("seed", range(WIRE_SEEDS))
    def test_roundtrip_is_a_fixpoint(self, seed):
        """to_wire ∘ from_wire ∘ to_wire is the identity on bytes."""
        result = _synthetic_result(seed)
        wire = campaign_to_wire(result)
        rebuilt = campaign_from_wire(wire)
        assert rebuilt.scheduler == result.scheduler
        assert rebuilt.scheduler_trace == result.scheduler_trace
        assert dumps_wire(campaign_to_wire(rebuilt)) == dumps_wire(wire)


class TestSerialParallelIdentity:
    """--scheduler coverage is byte-identical at every worker count."""

    def test_coverage_trials_serial_equals_workers_2(self):
        """Two 600 s coverage trials shard to the same bytes."""
        kwargs = dict(
            device="D1",
            mode=Mode.FULL,
            n_trials=2,
            duration=600.0,
            base_seed=0,
            scheduler="coverage",
        )
        serial = run_trials(workers=1, **kwargs)
        sharded = run_trials(workers=2, **kwargs)
        assert not serial.failures and not sharded.failures
        assert len(serial.trials) == len(sharded.trials) == 2
        for left, right in zip(serial.trials, sharded.trials):
            assert left.scheduler == right.scheduler == "coverage"
            assert dumps_wire(campaign_to_wire(left)) == dumps_wire(
                campaign_to_wire(right)
            )


class TestStaticTieBreak:
    """Satellite 3: static prioritisation uses an explicit total key."""

    def test_equal_scores_order_by_ascending_identifier(self, registry):
        """CMDCLs sharing a command count sort by id, not dict order."""
        known = [c for c in range(0x01, 0x100) if registry.get(c) is not None]
        by_count = {}
        for cmdcl in known:
            by_count.setdefault(registry.command_count(cmdcl), []).append(cmdcl)
        ties = {count: ids for count, ids in by_count.items() if len(ids) > 1}
        assert ties, "registry has no tied command counts to regress against"
        order = prioritize_static(registry, known)
        for ids in ties.values():
            positions = [order.index(c) for c in sorted(ids)]
            assert positions == sorted(positions)

    @pytest.mark.parametrize("seed", range(20))
    def test_priority_is_input_order_independent(self, registry, seed):
        """Shuffling the input set never changes the output queue."""
        known = [c for c in range(0x01, 0x100) if registry.get(c) is not None]
        shuffled = list(known)
        random.Random(seed).shuffle(shuffled)
        assert prioritize_static(registry, shuffled) == prioritize_static(
            registry, known
        )

    def test_key_matches_registry_prioritize(self, registry):
        """The hoisted key reproduces the registry ordering exactly."""
        cmdcls = [c for c in range(0x01, 0x100) if registry.get(c) is not None]
        cmdcls += [0xEE, 0xDD]  # schema-less classes follow, ascending
        assert prioritize_static(registry, cmdcls) == registry.prioritize(cmdcls)
        a, b = 0x59, 0x5A
        assert registry.command_count(a) >= 0 and static_priority_key(
            registry, a
        ) != static_priority_key(registry, b)

    def test_mutation_and_scheduler_pass_determinism_lint(self):
        """D103/D104 stay clean in the modules owning the ordering."""
        from repro.lint.determinism import DeterminismAnalyzer
        from repro.lint.runner import run_lint

        core = Path(__file__).resolve().parents[1] / "src" / "repro" / "core"
        report = run_lint(root=core, analyzers=[DeterminismAnalyzer()])
        flagged = [
            f
            for f in report.findings
            if f.rule in ("D103", "D104")
            and Path(f.path).name in ("mutation.py", "scheduler.py")
        ]
        assert flagged == []
