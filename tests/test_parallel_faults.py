"""Worker-crash handling in the parallel executor.

A campaign unit whose worker raises, dies or hangs must be retried once
and then surfaced as a *structured* failure in the merged summary — never
an unhandled exception, and never at the cost of the other shards'
results.
"""

import pytest

from repro.core.campaign import Mode
from repro.core.parallel import (
    FAILURE_CRASH,
    FAILURE_EXCEPTION,
    FAILURE_TIMEOUT,
    CampaignUnit,
    UnitFailure,
    execute_units,
    parallel_supported,
    resolve_workers,
)
from repro.core.resultio import merge_trials
from repro.core.trials import trial_units

DURATION = 600.0  # 10 simulated minutes keeps each shard ~0.5 s wall


def good_units(n=2):
    return trial_units("D1", Mode.FULL, n, DURATION, 0)


def faulty(fault, seed=9999):
    return CampaignUnit(device="D1", mode=Mode.FULL, duration=DURATION,
                        seed=seed, fault=fault)


@pytest.fixture(scope="module")
def reference():
    """What the healthy shards must still produce, faults notwithstanding."""
    outcomes = execute_units(good_units(), workers=1)
    return [o.result for o in outcomes]


class TestWorkerRaise:
    def test_retried_once_then_structured_failure(self, reference):
        outcomes = execute_units(good_units() + [faulty("raise")], workers=3)
        bad = outcomes[-1]
        assert bad.result is None
        assert bad.attempts == 2  # first try + one retry
        assert isinstance(bad.failure, UnitFailure)
        assert bad.failure.category == FAILURE_EXCEPTION
        assert "injected fault" in bad.failure.error
        # The healthy shards' results are intact and identical to serial.
        assert [o.result for o in outcomes[:2]] == reference

    def test_merged_summary_keeps_survivors(self, reference):
        outcomes = execute_units(good_units() + [faulty("raise")], workers=3)
        summary = merge_trials("D1", Mode.FULL, DURATION, outcomes)
        assert summary.n_trials == 2
        assert summary.trials == reference
        assert len(summary.failures) == 1
        assert summary.failures[0].category == FAILURE_EXCEPTION
        rendered = summary.render()
        assert "FAILED zcover:D1:FULL:seed=9999" in rendered
        assert "2 attempt(s)" in rendered

    def test_transient_fault_recovers_on_retry(self, tmp_path, reference):
        # The marker file makes the first attempt raise and the retry
        # succeed — the unit must come back with a result, not a failure.
        marker = tmp_path / "fault-fired"
        flaky = CampaignUnit(device="D1", mode=Mode.FULL, duration=DURATION,
                             seed=0, fault=f"raise-once:{marker}")
        outcomes = execute_units([flaky, good_units()[1]], workers=2)
        assert marker.exists()
        assert outcomes[0].failure is None
        assert outcomes[0].attempts == 2
        assert outcomes[0].result == reference[0]
        assert outcomes[1].result == reference[1]


@pytest.mark.skipif(not parallel_supported(), reason="no process pool here")
class TestWorkerDeath:
    def test_dead_worker_is_contained(self, reference):
        # os._exit in the worker breaks the whole pool; innocent shards
        # caught in the breakage must be retried, the culprit surfaced.
        outcomes = execute_units(good_units() + [faulty("exit")], workers=3)
        bad = outcomes[-1]
        assert bad.result is None
        assert bad.failure is not None
        assert bad.failure.category == FAILURE_CRASH
        assert [o.result for o in outcomes[:2]] == reference

    def test_serial_fallback_never_forks(self, reference):
        # workers=1 must not even create a pool — an "exit" fault there
        # would kill the test process itself, so only assert the healthy
        # path produces identical results in-process.
        outcomes = execute_units(good_units(), workers=1)
        assert [o.result for o in outcomes] == reference


@pytest.mark.skipif(not parallel_supported(), reason="no process pool here")
class TestTimeout:
    def test_hanging_worker_times_out(self, reference):
        # The hang (6 s wall) comfortably exceeds the per-unit budget
        # (2.5 s), while the healthy shard finishes well inside it.
        outcomes = execute_units(
            [good_units(1)[0], faulty("hang:6")], workers=2, timeout=2.5
        )
        good, bad = outcomes
        assert good.result == reference[0]
        assert bad.result is None
        assert bad.failure is not None
        assert bad.failure.category == FAILURE_TIMEOUT
        assert "2.5" in bad.failure.error


class TestWorkerResolution:
    def test_zero_means_per_core(self):
        import os

        assert resolve_workers(0) == (os.cpu_count() or 1)
        assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_explicit_counts_are_honoured(self):
        assert resolve_workers(4) == 4
        assert resolve_workers(1) == 1
