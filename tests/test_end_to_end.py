"""End-to-end reproduction checks: the paper's headline numbers.

These are the expensive integration tests (a few seconds each): one-hour
simulated campaigns whose outcomes must land on the paper's Tables IV/V/VI
shapes.  Faster unit-level equivalents live in the per-module test files.
"""

import pytest

from repro.core.baseline import VFuzzBaseline
from repro.core.campaign import HOUR, Mode, run_campaign
from repro.simulator.testbed import build_sut


@pytest.fixture(scope="module")
def full_hour_d1():
    return run_campaign("D1", Mode.FULL, duration=HOUR, seed=0)


class TestHeadlineResult:
    def test_full_zcover_finds_all_fifteen_zero_days(self, full_hour_d1):
        assert full_hour_d1.unique_vulnerabilities == 15
        assert full_hour_d1.matched_bug_ids == tuple(range(1, 16))

    def test_coverage_matches_table5(self, full_hour_d1):
        assert full_hour_d1.fuzz.cmdcl_coverage == 45
        assert full_hour_d1.fuzz.cmd_coverage == 53

    def test_most_bugs_found_within_600s(self, full_hour_d1):
        """Figure 12: discovery concentrates in the initial fuzzing phase."""
        early = [t for t, _, _ in full_hour_d1.discovery_timeline() if t <= 700.0]
        assert len(early) >= 10

    def test_packet_rate_near_800_per_600s(self, full_hour_d1):
        points = [p for p in full_hour_d1.fuzz.timeline if p.timestamp <= 600.0]
        assert points
        assert 650 <= points[-1].packets <= 850

    def test_fingerprint_matches_table4(self, full_hour_d1):
        props = full_hour_d1.properties
        assert props.home_id == 0xE7DE3F3D
        assert props.controller_node_id == 1
        assert props.known_count == 17
        assert props.unknown_count == 28


class TestAblationShape:
    """Table VI: full(15) > beta(8) > gamma(~6)."""

    def test_beta_finds_exactly_eight(self):
        result = run_campaign("D1", Mode.BETA, duration=HOUR, seed=0)
        assert result.unique_vulnerabilities == 8
        assert set(result.matched_bug_ids) == {6, 7, 8, 9, 10, 11, 13, 15}

    def test_gamma_finds_roughly_six(self):
        result = run_campaign("D1", Mode.GAMMA, duration=HOUR, seed=1)
        assert 4 <= result.unique_vulnerabilities <= 8

    def test_ordering_holds(self, full_hour_d1):
        beta = run_campaign("D1", Mode.BETA, duration=HOUR, seed=0)
        gamma = run_campaign("D1", Mode.GAMMA, duration=HOUR, seed=1)
        assert (
            full_hour_d1.unique_vulnerabilities
            > beta.unique_vulnerabilities
            > gamma.unique_vulnerabilities
        )


class TestVFuzzComparisonShape:
    """Table V on a reduced (3-hour) horizon: counts and disjointness."""

    @pytest.mark.parametrize("device,expected", [("D1", 1), ("D3", 0)])
    def test_vfuzz_unique_counts(self, device, expected):
        sut = build_sut(device, seed=0)
        result = VFuzzBaseline(sut, seed=0).run(3 * HOUR)
        assert result.unique_vulnerabilities == expected

    def test_finding_sets_disjoint(self, full_hour_d1):
        sut = build_sut("D1", seed=0)
        vfuzz = VFuzzBaseline(sut, seed=0).run(3 * HOUR)
        zcover_bugs = set(full_hour_d1.matched_bug_ids)
        assert not zcover_bugs & set()  # ZCover finds only zero-days...
        assert vfuzz.zero_day_payloads == []  # ...VFuzz finds none of them.
        assert set(vfuzz.quirks_found) == {"LEN-OVERRUN"}


class TestCrossDeviceCampaigns:
    """Full campaigns on other testbed controllers."""

    def test_d4_finds_all_fifteen(self):
        result = run_campaign("D4", Mode.FULL, duration=HOUR, seed=0)
        assert result.matched_bug_ids == tuple(range(1, 16))

    def test_d7_hub_finds_thirteen(self):
        result = run_campaign("D7", Mode.FULL, duration=HOUR, seed=0)
        assert set(result.matched_bug_ids) == set(range(1, 16)) - {6, 13}


class TestCrossDeviceFingerprints:
    """Table IV across the whole controller fleet."""

    @pytest.mark.parametrize(
        "device,known,unknown",
        [
            ("D1", 17, 28), ("D2", 17, 28), ("D3", 15, 30), ("D4", 17, 28),
            ("D5", 15, 30), ("D6", 17, 28), ("D7", 15, 30),
        ],
    )
    def test_known_unknown_counts(self, device, known, unknown):
        from repro.core.discovery import discover_unknown_properties
        from repro.core.fingerprint import fingerprint

        sut = build_sut(device, seed=2)
        props = fingerprint(sut.dongle, sut.clock)
        props = discover_unknown_properties(sut.dongle, sut.clock, props)
        assert (props.known_count, props.unknown_count) == (known, unknown)
