"""Golden session-fuzzer comparison: the seed-0 two-device byte pin.

``tests/data/session_golden.json`` freezes the seed-0 session campaign
on both testbed devices: the full mutation trajectory (one labelled
entry per trial), the per-state coverage counts of every flow's
``flow@state>mark`` bitmap, and which planted session vulnerability
fired at which sequence index of which trial.  The complete wire v5
encoding is pinned by SHA-256 so any drift in the schedule compiler,
the op applier, the lenient-controller evaluator, the energy loop or
the wire codec shows up as a byte diff here (same convention as
``scheduler_golden.json`` / ``faults_golden.json``).

Regenerate after an intentional engine change with::

    PYTHONPATH=src:tests python -c \
        "import test_session_golden as t; t.write_golden()"
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.core.resultio import dumps_wire, session_to_wire
from repro.core.session import FLOWS, planted_vuln_ids, run_sessions
from repro.obs.metrics import is_state_coverage_key

GOLDEN_PATH = Path(__file__).resolve().parent / "data" / "session_golden.json"

SCHEMA = "zcover.session-golden/v1"
DEVICES = ("D1", "D2")
SEED = 0


def _run_device(device):
    return run_sessions(device, seed=SEED)


def _state_coverage(result):
    """Per-flow sorted ``state>mark`` hit counts from the coverage map."""
    by_flow = {flow: {} for flow in FLOWS}
    coverage = result.metrics.coverage if result.metrics is not None else {}
    for key, count in coverage.items():
        if not is_state_coverage_key(key):
            continue
        flow, transition = key.split("@", 1)
        by_flow[flow][transition] = count
    return {
        flow: {name: transitions[name] for name in sorted(transitions)}
        for flow, transitions in by_flow.items()
    }


def _document(result):
    """The golden-relevant slice of one device's session campaign."""
    wire_text = dumps_wire(session_to_wire(result))
    return {
        "schema": SCHEMA,
        "device": result.device,
        "seed": result.seed,
        "trials_by_flow": dict(sorted(result.trials_by_flow.items())),
        "op_counts": dict(sorted(result.op_counts.items())),
        "trajectory": [list(entry) for entry in result.trajectory],
        "bugs": [
            [bug.flow, bug.trial, bug.sequence_index, bug.vuln_id, bug.state]
            for bug in result.bugs
        ],
        "state_coverage": _state_coverage(result),
        "energy_trace": [list(entry) for entry in result.energy_trace],
        "wire_sha256": hashlib.sha256(wire_text.encode("utf-8")).hexdigest(),
    }


def build_golden_text(results=None):
    """Both devices' session documents, concatenated in device order."""
    results = results or {device: _run_device(device) for device in DEVICES}
    return "".join(
        json.dumps(_document(results[device]), sort_keys=True, indent=1) + "\n"
        for device in DEVICES
    )


def write_golden(results=None):
    """Regenerate the golden file through the exact code path the test uses."""
    GOLDEN_PATH.write_text(build_golden_text(results))


@pytest.fixture(scope="module")
def results():
    return {device: _run_device(device) for device in DEVICES}


class TestGolden:
    def test_documents_match_golden_bytes(self, results):
        assert GOLDEN_PATH.exists(), "run write_golden() to create the golden file"
        assert build_golden_text(results) == GOLDEN_PATH.read_text()

    def test_all_planted_bugs_found_on_every_device(self, results):
        """The acceptance criterion: seed 0 uncovers every planted session
        vulnerability on the whole device set."""
        planted = set(planted_vuln_ids())
        for device in DEVICES:
            result = results[device]
            assert result.found_all_planted
            assert set(result.found_vuln_ids) == planted

    def test_sharded_run_matches_the_golden_pin(self, results):
        """``--workers 2`` reproduces the pinned serial wire hash exactly."""
        pooled = run_sessions("D1", seed=SEED, workers=2)
        assert _document(pooled) == _document(results["D1"])

    def test_bug_records_point_into_their_trials(self, results):
        """Each pinned discovery names a real (flow, trial) of the run and
        a plausible sequence index for a mutated happy path."""
        for device in DEVICES:
            result = results[device]
            for bug in result.bugs:
                assert bug.flow in result.trials_by_flow
                assert 0 <= bug.trial < result.trials_by_flow[bug.flow]
                assert bug.sequence_index >= 0

    def test_state_coverage_agrees_with_transition_counters(self, results):
        """The per-flow bitmap sizes equal the ``session.transitions.*``
        counters the energy loop emitted."""
        for device in DEVICES:
            result = results[device]
            coverage = _state_coverage(result)
            counters = result.metrics.counters
            for flow in FLOWS:
                assert len(coverage[flow]) == counters[f"session.transitions.{flow}"]

    def test_golden_documents_are_schema_tagged(self):
        decoder = json.JSONDecoder()
        text = GOLDEN_PATH.read_text()
        index = 0
        seen = []
        while index < len(text.rstrip()):
            doc, end = decoder.raw_decode(text, index)
            assert doc["schema"] == SCHEMA
            assert set(doc["state_coverage"]) == set(FLOWS)
            seen.append(doc["device"])
            index = end + 1  # skip the trailing newline between documents
        assert tuple(seen) == DEVICES
