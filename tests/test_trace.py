"""Tests for trace capture persistence and dissection."""

import pytest

from repro.radio.trace import (
    TraceRecord,
    dissect,
    dissect_trace,
    load_trace,
    save_trace,
)


@pytest.fixture
def captures(sut):
    sut.dongle.clear_captures()
    sut.clock.advance(120.0)
    return sut.dongle.captures()


class TestPersistence:
    def test_save_load_roundtrip(self, captures, tmp_path):
        path = tmp_path / "capture.jsonl"
        count = save_trace(captures, path)
        assert count == len(captures) > 0
        records = load_trace(path)
        assert len(records) == count
        assert records[0].raw == captures[0].raw
        assert records[0].timestamp == captures[0].timestamp

    def test_record_from_capture(self, captures):
        record = TraceRecord.from_capture(captures[0])
        assert record.frame is not None
        assert record.raw_hex == captures[0].raw.hex()

    def test_load_skips_blank_lines(self, captures, tmp_path):
        path = tmp_path / "capture.jsonl"
        save_trace(captures[:2], path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_trace(path)) == 2


class TestDissection:
    def test_data_frame_line(self, full_registry):
        record = TraceRecord(
            timestamp=1.5,
            rssi_dbm=-70.0,
            raw_hex="e7de3f3d020141000d01200201" + "00",
        )
        # Build a real frame instead of hand-rolling hex.
        from repro.zwave.frame import ZWaveFrame

        frame = ZWaveFrame(home_id=0xE7DE3F3D, src=2, dst=1, payload=b"\x20\x02")
        record = TraceRecord(1.5, -70.0, frame.encode().hex())
        line = dissect(record, full_registry)
        assert "E7DE3F3D" in line
        assert "BASIC.BASIC_GET" in line
        assert "2 ->   1" in line

    def test_ack_line(self, full_registry):
        from repro.zwave.frame import ZWaveFrame

        ack = ZWaveFrame(home_id=0xE7DE3F3D, src=2, dst=1, payload=b"\x20\x02").ack()
        line = dissect(TraceRecord(0.0, -60.0, ack.encode().hex()), full_registry)
        assert line.endswith("ACK")

    def test_nop_line(self, full_registry):
        from repro.zwave.frame import make_nop

        nop = make_nop(0xE7DE3F3D, 15, 1)
        line = dissect(TraceRecord(0.0, -60.0, nop.encode().hex()), full_registry)
        assert "NOP" in line

    def test_undecodable_line(self, full_registry):
        line = dissect(TraceRecord(0.0, -60.0, "deadbeef"), full_registry)
        assert "undecodable" in line

    def test_unknown_command_shows_hex(self, full_registry):
        from repro.zwave.frame import ZWaveFrame

        frame = ZWaveFrame(home_id=0xE7DE3F3D, src=2, dst=1, payload=b"\x20\x99\x01")
        line = dissect(TraceRecord(0.0, -60.0, frame.encode().hex()), full_registry)
        assert "BASIC.0x99" in line

    def test_class_probe_line(self, full_registry):
        from repro.zwave.frame import ZWaveFrame

        frame = ZWaveFrame(home_id=0xE7DE3F3D, src=15, dst=1, payload=b"\x85")
        line = dissect(TraceRecord(0.0, -60.0, frame.encode().hex()), full_registry)
        assert "class probe" in line

    def test_full_trace_transcript(self, captures, full_registry):
        records = [TraceRecord.from_capture(c) for c in captures[:10]]
        transcript = dissect_trace(records, full_registry)
        assert len(transcript.splitlines()) == len(records)

    def test_attack_payload_dissected(self, full_registry):
        from repro.zwave.frame import ZWaveFrame

        attack = ZWaveFrame(
            home_id=0xE7DE3F3D, src=15, dst=1, payload=bytes([0x01, 0x0D, 0x02, 0x03])
        )
        line = dissect(TraceRecord(0.0, -60.0, attack.encode().hex()), full_registry)
        assert "ZWAVE_PROTOCOL.PROTOCOL_NVM_NODE_WRITE" in line

    def test_named_parameters(self, full_registry):
        from repro.zwave.frame import ZWaveFrame

        attack = ZWaveFrame(
            home_id=0xE7DE3F3D, src=15, dst=1, payload=bytes([0x01, 0x0D, 0x02, 0x03])
        )
        line = dissect(TraceRecord(0.0, -60.0, attack.encode().hex()), full_registry)
        assert "node_id=0x02" in line
        assert "operation=0x03" in line

    def test_trailing_unnamed_bytes_fall_back_to_hex(self, full_registry):
        from repro.zwave.frame import ZWaveFrame

        frame = ZWaveFrame(
            home_id=0xE7DE3F3D, src=2, dst=1, payload=bytes([0x20, 0x01, 0xFF, 0x42])
        )
        line = dissect(TraceRecord(0.0, -60.0, frame.encode().hex()), full_registry)
        assert "value=0xFF" in line
        assert "0x42" in line
