"""Tests for the controller's stateful ASSOCIATION/CONFIGURATION handlers."""


from repro.zwave.frame import ZWaveFrame


def inject(sut, payload, src=0x0F):
    frame = ZWaveFrame(
        home_id=sut.profile.home_id, src=src, dst=1, payload=bytes(payload)
    )
    sut.dongle.clear_captures()
    sut.dongle.inject(frame)
    sut.clock.advance(0.2)
    return [
        c.frame.payload
        for c in sut.dongle.captures()
        if c.frame and not c.frame.is_ack and c.frame.payload and c.frame.src == 1
    ]


class TestAssociation:
    def test_set_adds_member(self, quiet_sut):
        inject(quiet_sut, [0x85, 0x01, 0x01, 0x02])
        assert quiet_sut.controller.associations[1] == [2]

    def test_set_rejects_bad_group_and_node(self, quiet_sut):
        inject(quiet_sut, [0x85, 0x01, 0x09, 0x02])  # group 9 > max
        inject(quiet_sut, [0x85, 0x01, 0x01, 0x00])  # node 0 invalid
        assert quiet_sut.controller.associations.get(9) is None
        assert quiet_sut.controller.associations[1] == []

    def test_set_deduplicates(self, quiet_sut):
        for _ in range(3):
            inject(quiet_sut, [0x85, 0x01, 0x01, 0x02])
        assert quiet_sut.controller.associations[1] == [2]

    def test_group_capacity_bounded(self, quiet_sut):
        for member in range(2, 20):
            inject(quiet_sut, [0x85, 0x01, 0x01, member])
        assert len(quiet_sut.controller.associations[1]) == 8

    def test_get_reports_members(self, quiet_sut):
        inject(quiet_sut, [0x85, 0x01, 0x01, 0x02])
        inject(quiet_sut, [0x85, 0x01, 0x01, 0x03])
        replies = inject(quiet_sut, [0x85, 0x02, 0x01])
        report = next(p for p in replies if p[0] == 0x85 and p[1] == 0x03)
        assert report[2] == 0x01  # group
        assert list(report[5:]) == [2, 3]

    def test_remove_member(self, quiet_sut):
        inject(quiet_sut, [0x85, 0x01, 0x01, 0x02])
        inject(quiet_sut, [0x85, 0x04, 0x01, 0x02])
        assert quiet_sut.controller.associations[1] == []

    def test_groupings_get(self, quiet_sut):
        replies = inject(quiet_sut, [0x85, 0x05])
        assert any(p[0] == 0x85 and p[1] == 0x06 for p in replies)


class TestConfiguration:
    def test_set_and_get_roundtrip(self, quiet_sut):
        inject(quiet_sut, [0x70, 0x04, 0x07, 0x01, 0x2A])
        assert quiet_sut.controller.config_params[7] == 0x2A
        replies = inject(quiet_sut, [0x70, 0x05, 0x07])
        report = next(p for p in replies if p[0] == 0x70 and p[1] == 0x06)
        assert report[2] == 0x07 and report[4] == 0x2A

    def test_multibyte_value(self, quiet_sut):
        inject(quiet_sut, [0x70, 0x04, 0x08, 0x02, 0x12, 0x34])
        assert quiet_sut.controller.config_params[8] == 0x1234

    def test_invalid_size_ignored(self, quiet_sut):
        inject(quiet_sut, [0x70, 0x04, 0x09, 0x03, 0x01, 0x02, 0x03])
        assert 9 not in quiet_sut.controller.config_params

    def test_truncated_value_ignored(self, quiet_sut):
        inject(quiet_sut, [0x70, 0x04, 0x0A, 0x04, 0x01])
        assert 0x0A not in quiet_sut.controller.config_params

    def test_unset_parameter_reports_zero(self, quiet_sut):
        replies = inject(quiet_sut, [0x70, 0x05, 0x55])
        report = next(p for p in replies if p[0] == 0x70 and p[1] == 0x06)
        assert report[4] == 0x00
