"""Tests for phase 1 (fingerprinting) and phase 2 (unknown discovery)."""

import pytest

from repro.errors import FuzzerError, TransceiverError
from repro.core.discovery import (
    SpecClusterer,
    ValidationTester,
    discover_unknown_properties,
)
from repro.core.fingerprint import (
    ActiveScanner,
    PassiveScanner,
    fingerprint,
)
from repro.core.properties import ControllerProperties
from repro.radio.clock import SimClock
from repro.radio.medium import RadioMedium
from repro.radio.transceiver import Transceiver
from repro.simulator.testbed import LISTED_15, LISTED_17, build_sut


class TestPassiveScanner:
    def test_requires_configured_dongle(self):
        clock = SimClock()
        medium = RadioMedium(clock)
        dongle = Transceiver(medium, clock)
        with pytest.raises(TransceiverError):
            PassiveScanner(dongle, clock)

    def test_recovers_network_identifiers(self, sut):
        result = PassiveScanner(sut.dongle, sut.clock).scan(duration=120.0)
        assert result.home_id == sut.profile.home_id
        assert result.controller_node_id == 1
        assert set(result.node_ids) >= {1, 2, 3}
        assert result.frames_decoded > 0

    def test_quiet_network_raises(self, quiet_sut):
        with pytest.raises(FuzzerError):
            PassiveScanner(quiet_sut.dongle, quiet_sut.clock).scan(duration=30.0)

    def test_summary_string(self, sut):
        result = PassiveScanner(sut.dongle, sut.clock).scan(duration=120.0)
        assert f"{sut.profile.home_id:08X}" in result.network_summary

    def test_s2_network_still_fingerprintable(self, sut):
        """S2 encrypts only the APL: headers stay readable (Section III-B1)."""
        result = PassiveScanner(sut.dongle, sut.clock).scan(duration=120.0)
        assert result.home_id == sut.profile.home_id


class TestActiveScanner:
    def test_nif_interrogation(self, quiet_sut):
        scanner = ActiveScanner(quiet_sut.dongle, quiet_sut.clock)
        result = scanner.interrogate(quiet_sut.profile.home_id, 1)
        assert result.listed_cmdcls == quiet_sut.controller.listed_cmdcls
        assert result.node_info.is_controller
        assert result.probes_sent == 1

    def test_unreachable_controller_raises(self, quiet_sut):
        quiet_sut.controller.set_power(False)
        scanner = ActiveScanner(quiet_sut.dongle, quiet_sut.clock)
        with pytest.raises(FuzzerError):
            scanner.interrogate(quiet_sut.profile.home_id, 1)


class TestFingerprintPipeline:
    @pytest.mark.parametrize("device,expected", [("D1", 17), ("D3", 15)])
    def test_known_counts_match_table4(self, device, expected):
        sut = build_sut(device, seed=11)
        props = fingerprint(sut.dongle, sut.clock)
        assert props.known_count == expected
        assert props.fingerprinted

    def test_all_seven_controllers(self):
        for device in ("D1", "D2", "D3", "D4", "D5", "D6", "D7"):
            sut = build_sut(device, seed=3)
            props = fingerprint(sut.dongle, sut.clock)
            assert props.home_id == sut.profile.home_id
            assert props.controller_node_id == 1


class TestClustering:
    def test_candidates_for_17_listing(self, public_registry):
        result = SpecClusterer(public_registry).cluster(LISTED_17)
        assert result.candidate_count == 26  # Section III-C1

    def test_candidates_for_15_listing(self, public_registry):
        result = SpecClusterer(public_registry).cluster(LISTED_15)
        assert result.candidate_count == 28

    def test_candidates_exclude_listed(self, public_registry):
        result = SpecClusterer(public_registry).cluster(LISTED_17)
        assert not set(result.unlisted_candidates) & set(LISTED_17)

    def test_empty_listing_yields_all_relevant(self, public_registry):
        result = SpecClusterer(public_registry).cluster(())
        assert result.unlisted_candidates == result.controller_relevant
        assert len(result.controller_relevant) == 43


class TestValidationTesting:
    def test_probe_supported_class_responds(self, quiet_sut):
        tester = ValidationTester(quiet_sut.dongle, quiet_sut.clock)
        outcome = tester.probe(quiet_sut.profile.home_id, 1, 0x85)
        assert outcome.responded

    def test_probe_unsupported_class_silent(self, quiet_sut):
        tester = ValidationTester(quiet_sut.dongle, quiet_sut.clock)
        outcome = tester.probe(quiet_sut.profile.home_id, 1, 0x31)
        assert not outcome.responded

    def test_probe_never_triggers_bugs(self, quiet_sut):
        """Probes are command-less so they cannot reach a vulnerability."""
        tester = ValidationTester(quiet_sut.dongle, quiet_sut.clock)
        for cmdcl in (0x01, 0x59, 0x5A, 0x73, 0x7A, 0x86, 0x9F):
            tester.probe(quiet_sut.profile.home_id, 1, cmdcl)
        assert not quiet_sut.controller.hung
        assert quiet_sut.host.responsive
        assert [e for e in quiet_sut.controller.events() if e.bug_id] == []

    def test_sweep_finds_proprietary_classes(self, quiet_sut, public_registry):
        clusterer = SpecClusterer(public_registry)
        candidates = clusterer.cluster(LISTED_17).unlisted_candidates
        tester = ValidationTester(quiet_sut.dongle, quiet_sut.clock)
        result = tester.sweep(
            quiet_sut.profile.home_id, 1, candidates, public_registry
        )
        assert result.proprietary == (0x01, 0x02)
        assert set(result.confirmed_candidates) == set(candidates)
        assert result.probe_count == max(candidates) + 1


class TestDiscoveryPipeline:
    @pytest.mark.parametrize(
        "device,known,unknown", [("D1", 17, 28), ("D3", 15, 30), ("D7", 15, 30)]
    )
    def test_table4_numbers(self, device, known, unknown):
        sut = build_sut(device, seed=5)
        props = fingerprint(sut.dongle, sut.clock)
        props = discover_unknown_properties(sut.dongle, sut.clock, props)
        assert props.known_count == known
        assert props.unknown_count == unknown
        assert len(props.all_cmdcls) == 45

    def test_prioritized_queue_order(self, full_registry):
        sut = build_sut("D1", seed=5)
        props = fingerprint(sut.dongle, sut.clock)
        props = discover_unknown_properties(sut.dongle, sut.clock, props)
        queue = props.prioritized(full_registry)
        assert len(queue) == 45
        assert queue[0] == 0x34
        assert queue[1] == 0x01


class TestControllerProperties:
    def test_unknown_excludes_listed(self):
        props = ControllerProperties(
            home_id=1,
            controller_node_id=1,
            listed_cmdcls=(0x20, 0x59),
            validated_unknown=(0x59, 0x34),
            proprietary=(0x01,),
        )
        assert props.unknown_cmdcls == (0x01, 0x34)

    def test_all_cmdcls_union(self):
        props = ControllerProperties(
            listed_cmdcls=(0x20,), validated_unknown=(0x34,), proprietary=(0x01,)
        )
        assert props.all_cmdcls == (0x01, 0x20, 0x34)

    def test_not_fingerprinted_without_ids(self):
        assert not ControllerProperties().fingerprinted
