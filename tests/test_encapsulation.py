"""Tests for the plaintext transport encapsulations (0x6C/0x56/0x60)."""


from repro.simulator.testbed import LOCK_NODE_ID
from repro.zwave.checksum import crc16
from repro.zwave.frame import ZWaveFrame


def inject(sut, payload, src=0x0F):
    frame = ZWaveFrame(
        home_id=sut.profile.home_id, src=src, dst=1, payload=bytes(payload)
    )
    sut.dongle.clear_captures()
    sut.dongle.inject(frame)
    sut.clock.advance(0.3)
    return [
        c.frame.payload
        for c in sut.dongle.captures()
        if c.frame and not c.frame.is_ack and c.frame.payload and c.frame.src == 1
    ]


def supervision_get(inner, session=0x21):
    return bytes([0x6C, 0x01, session, len(inner)]) + bytes(inner)


def crc16_encap(inner):
    covered = bytes([0x56, 0x01]) + bytes(inner)
    return covered + crc16(covered).to_bytes(2, "big")


def multichannel_encap(inner, src_ep=1, dst_ep=0):
    return bytes([0x60, 0x0D, src_ep, dst_ep]) + bytes(inner)


class TestSupervision:
    def test_wrapped_get_earns_report_and_supervision_success(self, quiet_sut):
        replies = inject(quiet_sut, supervision_get([0x86, 0x11]))
        assert any(p[:2] == b"\x86\x12" for p in replies)  # VERSION_REPORT
        status = next(p for p in replies if p[0] == 0x6C and p[1] == 0x02)
        assert status[2] == 0x21  # session echoed
        assert status[3] == 0xFF  # SUCCESS

    def test_unsupported_inner_reports_no_support(self, quiet_sut):
        replies = inject(quiet_sut, supervision_get([0x31, 0x04]))  # sensor class
        status = next(p for p in replies if p[0] == 0x6C and p[1] == 0x02)
        assert status[3] == 0x00  # NO_SUPPORT

    def test_empty_supervision_still_answered(self, quiet_sut):
        replies = inject(quiet_sut, bytes([0x6C, 0x01, 0x05, 0x00]))
        status = next(p for p in replies if p[0] == 0x6C and p[1] == 0x02)
        assert status[3] == 0x00

    def test_supervised_attack_payload_still_fires(self, quiet_sut):
        """Encapsulation does not launder the Table III triggers."""
        inject(quiet_sut, supervision_get([0x01, 0x0D, LOCK_NODE_ID, 0x03]))
        assert LOCK_NODE_ID not in quiet_sut.controller.nvm


class TestCrc16Encap:
    def test_valid_crc_processes_inner(self, quiet_sut):
        replies = inject(quiet_sut, crc16_encap([0x86, 0x11]))
        assert any(p[:2] == b"\x86\x12" for p in replies)

    def test_bad_crc_rejected(self, quiet_sut):
        payload = bytearray(crc16_encap([0x86, 0x11]))
        payload[-1] ^= 0x01
        before = quiet_sut.controller.stats.rejected_checksum
        replies = inject(quiet_sut, bytes(payload))
        assert not any(p[:2] == b"\x86\x12" for p in replies)
        assert quiet_sut.controller.stats.rejected_checksum == before + 1

    def test_truncated_encap_ignored(self, quiet_sut):
        replies = inject(quiet_sut, bytes([0x56, 0x01, 0x86]))
        assert not any(p[:2] == b"\x86\x12" for p in replies)


class TestMultiChannel:
    def test_endpoint_wrapped_get(self, quiet_sut):
        replies = inject(quiet_sut, multichannel_encap([0x86, 0x11]))
        assert any(p[:2] == b"\x86\x12" for p in replies)

    def test_short_encap_falls_through(self, quiet_sut):
        replies = inject(quiet_sut, bytes([0x60, 0x0D, 0x01]))
        assert not any(p[:2] == b"\x86\x12" for p in replies)


class TestNestingBound:
    def test_two_levels_accepted(self, quiet_sut):
        nested = supervision_get(crc16_encap([0x86, 0x11]))
        replies = inject(quiet_sut, nested)
        assert any(p[:2] == b"\x86\x12" for p in replies)

    def test_third_level_refused(self, quiet_sut):
        triple = supervision_get(crc16_encap(multichannel_encap([0x86, 0x11])))
        replies = inject(quiet_sut, triple)
        assert not any(p[:2] == b"\x86\x12" for p in replies)
