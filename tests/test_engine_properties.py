"""Seeded property suite for the batched event engine (ISSUE 10).

~500 generated cases across three properties that together pin the
ordering and rng contracts the engine migration relied on:

* **heap tie-break determinism** (200 seeds) — events sharing a fire
  time drain in schedule order, because ``schedule``/``schedule_call``
  share one monotonically increasing id space used as the heap's
  tie-break key; cancellation never perturbs the order of survivors;
* **rng draw identity under caching** (200 seeds) — the loss draw
  happens for every endpoint above sensitivity, even on perfect links,
  and cache state (delivery-plan, rssi, airtime) never changes rng
  consumption: a medium whose caches are invalidated before every
  transmission draws the exact same random stream as a warm one;
* **reference-model equivalence** (100 seeds) — the batched delivery of
  a clean-channel transmission matches an independent per-endpoint
  reimplementation of the retired legacy loop (same filter chain, same
  draw order, same delivery order and timestamps).
"""

import math
import random

import pytest

from repro.radio.clock import SimClock
from repro.radio.medium import (
    RadioMedium,
    loss_probability,
    received_power_dbm,
)
from repro.zwave.constants import Region

HEAP_SEEDS = 200
RNG_SEEDS = 200
MODEL_SEEDS = 100

FRAME = bytes(range(20))


class CountingRandom(random.Random):
    """A ``random.Random`` that logs every ``random()`` draw it serves."""

    def __init__(self, seed):
        super().__init__(seed)
        self.draws = []

    def random(self):
        value = super().random()
        self.draws.append(value)
        return value


def _random_topology(rng, medium=None):
    """Attach 3-8 endpoints at seeded positions; returns their specs.

    Distances are drawn across the whole link-quality range: perfect
    links, marginal ones (probabilistic loss draws) and sub-sensitivity
    listeners that never reach the draw.
    """
    specs = []
    n = rng.randrange(3, 9)
    for index in range(n):
        name = f"ep{index}"
        position = (rng.uniform(0.0, 400.0), rng.uniform(0.0, 10.0))
        region = Region.EU if rng.random() < 0.85 else Region.US
        specs.append((name, position, region))
        if medium is not None:
            medium.attach(name, position, region, lambda reception: None)
    return specs


# -- property 1: heap tie-break determinism -------------------------------------


@pytest.mark.parametrize("seed", range(HEAP_SEEDS))
def test_same_tick_events_fire_in_schedule_order(seed):
    rng = random.Random(seed)
    clock = SimClock()
    log = []
    scheduled = []  # (event_id, fire_delay, marker)
    for marker in range(rng.randrange(5, 40)):
        # A handful of shared fire times forces heavy tie-breaking.
        delay = rng.choice((0.001, 0.002, 0.002, 0.003, 0.003, 0.003))
        if rng.random() < 0.5:
            event_id = clock.schedule(delay, lambda m=marker: log.append(m))
        else:
            event_id = clock.schedule_call(delay, log.append, marker)
        scheduled.append((event_id, delay, marker))

    # Ids are strictly increasing across both schedule flavours — the
    # shared key space IS the tie-break contract.
    ids = [event_id for event_id, _, _ in scheduled]
    assert ids == sorted(ids) and len(set(ids)) == len(ids)

    cancelled = set()
    for event_id, _, marker in scheduled:
        if rng.random() < 0.2:
            clock.cancel(event_id)
            cancelled.add(marker)

    clock.advance(1.0)
    expected = [
        marker
        for event_id, delay, marker in sorted(scheduled, key=lambda s: (s[1], s[0]))
        if marker not in cancelled
    ]
    assert log == expected


# -- property 2: rng draw identity under caching --------------------------------


@pytest.mark.parametrize("seed", range(RNG_SEEDS))
def test_cache_state_never_changes_rng_consumption(seed):
    rng = random.Random(seed ^ 0xC0FFEE)
    noisy = rng.random() < 0.3

    def build():
        clock = SimClock()
        counting = CountingRandom(seed)
        medium = RadioMedium(
            clock,
            rng=counting,
            noise_bit_rate=0.001 if noisy else 0.0,
            bit_accurate=noisy,
        )
        topo_rng = random.Random(seed ^ 0xC0FFEE)
        topo_rng.random()  # mirror the `noisy` draw above
        _random_topology(topo_rng, medium)
        return clock, medium, counting

    clock_a, warm, draws_a = build()
    clock_b, cold, draws_b = build()

    senders = [name for name in warm.endpoints()]
    script_rng = random.Random(seed + 1)
    for step in range(25):
        sender = script_rng.choice(senders)
        frame = FRAME + bytes([step])
        warm.transmit(sender, frame, rate_kbaud=100.0)
        cold._invalidate_topology()  # cold caches on every transmission
        cold.transmit(sender, frame, rate_kbaud=100.0)
        clock_a.advance(0.05)
        clock_b.advance(0.05)

    assert draws_a.draws == draws_b.draws
    assert warm.stats == cold.stats


@pytest.mark.parametrize("seed", range(RNG_SEEDS, RNG_SEEDS + MODEL_SEEDS))
def test_batched_delivery_matches_reference_model(seed):
    """Differential oracle: an in-test reimplementation of the retired
    per-endpoint legacy loop predicts draws, losses, delivery order and
    timestamps; the batched engine must reproduce all of them exactly."""
    clock = SimClock()
    counting = CountingRandom(seed)
    medium = RadioMedium(clock, rng=counting)
    topo_rng = random.Random(seed)
    specs = _random_topology(topo_rng)
    received = []
    for name, position, region in specs:
        medium.attach(
            name,
            position,
            region,
            (lambda n: lambda r: received.append((n, r.raw, r.timestamp)))(name),
        )

    model_rng = CountingRandom(seed)
    expected_received = []
    expected_losses = 0
    script_rng = random.Random(seed + 1)
    for step in range(20):
        sender, sender_pos, sender_region = script_rng.choice(specs)
        frame = FRAME + bytes([step])
        transmit_at = clock.now
        airtime = medium.transmit(sender, frame, rate_kbaud=100.0)
        # Reference model: the legacy filter/draw chain, endpoint order.
        for name, position, region in specs:
            if name == sender or region != sender_region:
                continue
            rssi = received_power_dbm(math.dist(sender_pos, position))
            if rssi < -95.0:
                expected_losses += 1
                continue
            if model_rng.random() < loss_probability(rssi):
                expected_losses += 1
                continue
            # Timestamp contract (preserved verbatim from the legacy
            # closure): fire-time ``now`` + airtime, i.e. the batch fires
            # one airtime after transmit and stamps one airtime later —
            # bit-exact float association included.
            expected_received.append((name, frame, (transmit_at + airtime) + airtime))
        clock.advance(0.05)

    assert counting.draws == model_rng.draws
    assert received == expected_received
    assert medium.stats["losses"] == expected_losses
    assert medium.stats["deliveries"] == len(expected_received)
