"""Byte-identity golden for the hot-path optimisation pass.

The perf PR rewrites the inner loops (frame codec caches, PSM batch
caching, dispatch precomputation); this golden proves the rewrite is
observationally invisible: the full wire form of a seed-0 two-device
FULL campaign — every test case, detection, bug record and metric — is
pinned byte-for-byte, and the sharded path (``execute_units`` with two
workers) must reproduce the identical bytes.

``tests/data/obs_golden.json`` pins the merged *metrics* document for the
same pair; this golden pins the complete ``CampaignResult`` wire text,
so a cache that perturbs even one payload byte or counter fails here.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src:tests python -c \
        "import test_perf_golden as t; t.write_golden()"
"""

import json
from pathlib import Path

import pytest

from repro.core.campaign import Mode, run_campaign
from repro.core.parallel import CampaignUnit, execute_units
from repro.core.resultio import campaign_to_wire, dumps_wire
from repro.obs.export import canonical_dumps, snapshot_to_document
from repro.obs.metrics import merge_snapshots

GOLDEN_PATH = Path(__file__).resolve().parent / "data" / "perf_golden.json"

DEVICES = ("D1", "D2")
DURATION = 600.0
SEED = 0


def _run_pair():
    return {
        device: run_campaign(device, Mode.FULL, duration=DURATION, seed=SEED)
        for device in DEVICES
    }


def build_golden_document(results=None):
    """Wire text per device plus the merged metrics document."""
    results = results or _run_pair()
    merged = results[DEVICES[0]].metrics
    for device in DEVICES[1:]:
        merged = merge_snapshots(merged, results[device].metrics)
    return {
        "schema": "zcover-perf-golden",
        "schema_version": 1,
        "meta": {
            "devices": ",".join(DEVICES),
            "duration_s": DURATION,
            "mode": "FULL",
            "seed": SEED,
        },
        "wire": {
            device: dumps_wire(campaign_to_wire(results[device]))
            for device in DEVICES
        },
        "metrics": snapshot_to_document(merged, meta={"kind": "perf-golden"}),
    }


def write_golden(results=None):
    GOLDEN_PATH.write_text(canonical_dumps(build_golden_document(results)))


@pytest.fixture(scope="module")
def results():
    return _run_pair()


@pytest.fixture(scope="module")
def golden():
    assert GOLDEN_PATH.exists(), "run write_golden() to create the golden file"
    return json.loads(GOLDEN_PATH.read_text())


class TestSerialIdentity:
    def test_document_matches_golden_bytes(self, results, golden):
        assert canonical_dumps(build_golden_document(results)) == GOLDEN_PATH.read_text()

    def test_each_wire_form_pinned(self, results, golden):
        for device in DEVICES:
            assert (
                dumps_wire(campaign_to_wire(results[device]))
                == golden["wire"][device]
            )


class TestShardedIdentity:
    """--workers 2 must reproduce the serial bytes exactly."""

    def test_workers_two_matches_golden(self, golden):
        units = [
            CampaignUnit(device=device, mode=Mode.FULL, duration=DURATION, seed=SEED)
            for device in DEVICES
        ]
        outcomes = execute_units(units, workers=2)
        for unit, outcome in zip(units, outcomes):
            assert outcome.failure is None, outcome.failure
            assert (
                dumps_wire(campaign_to_wire(outcome.result))
                == golden["wire"][unit.device]
            )
