"""Tests for the position-sensitive mutator (Table I / Section III-D)."""

import itertools
import random

import pytest

from repro.core.mutation import (
    FIELD_OPERATORS,
    INTERESTING_VALUES,
    INVALID_CMD_SWEEP,
    MutationOperator,
    PositionSensitiveMutator,
    RandomMutator,
)
from repro.zwave.application import Validity, validate_payload


def take(iterator, n):
    return list(itertools.islice(iterator, n))


@pytest.fixture
def mutator(full_registry):
    return PositionSensitiveMutator(full_registry, random.Random(0))


class TestTableIOperatorAssignment:
    """Table I verbatim: MAC fields get nothing, APL fields get the set."""

    @pytest.mark.parametrize("field", ["H-ID", "SRC", "P1", "P2", "LEN", "DST", "CS"])
    def test_mac_fields_have_no_operators(self, field):
        assert FIELD_OPERATORS[field] == ()

    def test_cmdcl_only_rand_valid(self):
        assert FIELD_OPERATORS["CMDCL"] == (MutationOperator.RAND_VALID,)

    @pytest.mark.parametrize("field", ["CMD", "PARAM"])
    def test_cmd_and_param_get_full_set(self, field):
        ops = set(FIELD_OPERATORS[field])
        assert {
            MutationOperator.RAND_VALID,
            MutationOperator.RAND_INVALID,
            MutationOperator.ARITH,
            MutationOperator.INTERESTING,
            MutationOperator.INSERT,
        } <= ops

    def test_interesting_values_are_boundaries(self):
        assert 0x00 in INTERESTING_VALUES
        assert 0xFF in INTERESTING_VALUES
        assert 0x7F in INTERESTING_VALUES and 0x80 in INTERESTING_VALUES


class TestGenerationStructure:
    def test_first_case_is_algorithm1_seed(self, mutator):
        first = take(mutator.generate(0x20), 1)[0]
        assert first.operator is MutationOperator.SEED
        assert first.payload.encode() == b"\x20\x00\x00"

    def test_valid_builds_follow_seed(self, mutator, full_registry):
        cls = full_registry.require(0x20)
        cases = take(mutator.generate(0x20), 1 + cls.command_count)
        for case, cmd_id in zip(cases[1:], cls.command_ids()):
            assert case.payload.cmd == cmd_id
            assert validate_payload(case.payload, full_registry).validity is Validity.VALID

    def test_cmdcl_never_mutated_within_stream(self, mutator):
        for case in take(mutator.generate(0x59), 300):
            assert case.payload.cmdcl == 0x59

    def test_stream_is_infinite(self, mutator):
        assert len(take(mutator.generate(0x5A), 2000)) == 2000

    def test_invalid_cmd_sweep_present(self, mutator):
        cases = take(mutator.generate(0x5A), 300)
        swept = {c.payload.cmd for c in cases if c.operator is MutationOperator.RAND_INVALID}
        assert set(INVALID_CMD_SWEEP) <= swept

    def test_truncations_generated(self, mutator):
        cases = take(mutator.generate(0x73), 300)
        truncated = [c for c in cases if c.operator is MutationOperator.TRUNCATE]
        assert truncated
        # POWERLEVEL_TEST_NODE_SET (4 params) truncated to 0..3 params.
        lengths = {
            len(c.payload.params) for c in truncated if c.payload.cmd == 0x04
        }
        assert lengths == {0, 1, 2, 3}

    def test_inserts_extend_payloads(self, mutator, full_registry):
        cases = take(mutator.generate(0x20), 200)
        inserted = [c for c in cases if c.operator is MutationOperator.INSERT]
        assert inserted
        cmd = full_registry.command(0x20, inserted[0].payload.cmd)
        assert len(inserted[0].payload.params) > len(cmd.params)

    def test_enum_cycling_covers_all_legal_values(self, mutator):
        # The NVM-write operation selector (bugs #01-#04/#12) must be swept.
        cases = take(mutator.generate(0x01), 400)
        op_values = {
            c.payload.params[1]
            for c in cases
            if c.payload.cmd == 0x0D and len(c.payload.params) >= 2
        }
        assert {0x00, 0x01, 0x02, 0x03, 0x04} <= op_values

    def test_illegal_values_generated_for_ranged_params(self, mutator):
        cases = take(mutator.generate(0x01), 600)
        illegal_masks = [
            c.payload.params[0]
            for c in cases
            if c.payload.cmd == 0x04
            and c.operator is MutationOperator.RAND_INVALID
            and c.payload.params
        ]
        assert any(v > 29 for v in illegal_masks)  # bug #14's trigger

    def test_deterministic_for_seed(self, full_registry):
        one = PositionSensitiveMutator(full_registry, random.Random(42))
        two = PositionSensitiveMutator(full_registry, random.Random(42))
        a = [c.payload.encode() for c in take(one.generate(0x86), 300)]
        b = [c.payload.encode() for c in take(two.generate(0x86), 300)]
        assert a == b

    def test_unknown_class_stream(self, full_registry):
        mutator = PositionSensitiveMutator(full_registry, random.Random(1))
        cases = take(mutator.generate(0xF7), 100)  # no schema anywhere
        assert all(c.payload.cmdcl == 0xF7 for c in cases)
        assert len(cases) == 100


class TestBugReachability:
    """Each Table III trigger shape must appear early in its class stream."""

    def find(self, mutator, cmdcl, predicate, limit=400):
        for i, case in enumerate(take(mutator.generate(cmdcl), limit)):
            if predicate(case.payload):
                return i
        return None

    def test_bug5_shape(self, mutator):
        index = self.find(mutator, 0x01, lambda p: p.cmd == 0x02)
        assert index is not None and index < 25

    def test_bug12_shape(self, mutator):
        index = self.find(
            mutator,
            0x01,
            lambda p: p.cmd == 0x0D and len(p.params) >= 2 and p.params[1] == 0x00,
        )
        assert index is not None and index < 25

    def test_bugs_1_to_4_shapes(self, mutator):
        for op in (0x01, 0x02, 0x03, 0x04):
            index = self.find(
                mutator,
                0x01,
                lambda p, op=op: p.cmd == 0x0D and len(p.params) >= 2 and p.params[1] == op,
            )
            assert index is not None and index < 80, hex(op)

    def test_bug6_shape(self, mutator):
        index = self.find(mutator, 0x9F, lambda p: p.cmd == 0x01 and not p.params)
        assert index is not None and index < 80

    def test_bug7_shape(self, mutator):
        index = self.find(mutator, 0x5A, lambda p: p.cmd == 0x01 and not p.params)
        assert index is not None and index < 10

    def test_bug10_shape(self, mutator):
        index = self.find(
            mutator, 0x86, lambda p: p.cmd == 0x13 and p.params and p.params[0] == 0x00
        )
        assert index is not None and index < 10

    def test_bug13_shape(self, mutator):
        index = self.find(
            mutator, 0x73, lambda p: p.cmd == 0x04 and len(p.params) < 4
        )
        assert index is not None and index < 80

    def test_bug14_shape(self, mutator):
        index = self.find(
            mutator, 0x01, lambda p: p.cmd == 0x04 and p.params and p.params[0] > 29
        )
        assert index is not None and index < 200


class TestRandomMutator:
    def test_uniform_space(self):
        cases = take(RandomMutator(random.Random(0)).generate(), 3000)
        cmdcls = {c.payload.cmdcl for c in cases}
        cmds = {c.payload.cmd for c in cases}
        assert len(cmdcls) > 200
        assert len(cmds) > 200

    def test_param_lengths_bounded(self):
        cases = take(RandomMutator(random.Random(1)).generate(), 500)
        assert all(len(c.payload.params) <= 4 for c in cases)

    def test_deterministic(self):
        a = [c.payload.encode() for c in take(RandomMutator(random.Random(7)).generate(), 100)]
        b = [c.payload.encode() for c in take(RandomMutator(random.Random(7)).generate(), 100)]
        assert a == b
