"""Golden chaos report: the fault stack's byte-for-byte regression pin.

``tests/data/faults_golden.json`` freezes the canonical chaos documents
for seed-0 trial series on both testbed devices under the canonical
mixed plan — every fault layer exercised, including the 480 s abort that
tags each trial with a degradation record.  Any drift in plan wire
format, fault scheduling, degradation tagging, or report canonicalisation
shows up as a byte diff here (same convention as ``obs_golden.json``).

Regenerate after an intentional schema change with::

    PYTHONPATH=src:tests python -c \
        "import test_faults_golden as t; t.write_golden()"
"""

import json
from pathlib import Path

import pytest

from repro.core.campaign import Mode
from repro.core.trials import run_trials
from repro.faults.plan import canonical_mixed_plan
from repro.faults.report import SCHEMA, build_chaos_document, dumps_chaos_document

GOLDEN_PATH = Path(__file__).resolve().parent / "data" / "faults_golden.json"

DEVICES = ("D1", "D2")
DURATION = 600.0
TRIALS = 2
SEED = 0


def _run_device(device):
    plan = canonical_mixed_plan()
    summary = run_trials(
        device=device,
        mode=Mode.FULL,
        n_trials=TRIALS,
        duration=DURATION,
        base_seed=SEED,
        workers=1,
        fault_plan=plan,
    )
    return summary, plan


def build_golden_text(summaries=None):
    """Both devices' chaos documents, concatenated in device order."""
    summaries = summaries or {device: _run_device(device) for device in DEVICES}
    return "".join(
        dumps_chaos_document(build_chaos_document(summary, plan, SEED))
        for summary, plan in (summaries[device] for device in DEVICES)
    )


def write_golden(summaries=None):
    """Regenerate the golden file through the exact code path the test uses."""
    GOLDEN_PATH.write_text(build_golden_text(summaries))


@pytest.fixture(scope="module")
def summaries():
    return {device: _run_device(device) for device in DEVICES}


class TestGolden:
    def test_documents_match_golden_bytes(self, summaries):
        assert GOLDEN_PATH.exists(), "run write_golden() to create the golden file"
        assert build_golden_text(summaries) == GOLDEN_PATH.read_text()

    def test_every_fault_layer_left_a_mark(self, summaries):
        """The canonical plan is only a good pin if it exercises all
        layers: medium faults counted, controller faults counted, and the
        480 s abort degraded every 600 s trial."""
        for device in DEVICES:
            summary, _ = summaries[device]
            counters = summary.merged_metrics().counters
            for key in (
                "faults.injected.medium.drop",
                "faults.injected.medium.corrupt",
                "faults.injected.controller.hang",
                "faults.injected.controller.spurious-reset",
                "faults.injected.campaign.abort",
            ):
                assert counters[key] > 0, f"{device}: {key} never fired"
            assert all(
                t.degradation is not None and t.degradation.reason == "abort"
                for t in summary.trials
            )

    def test_golden_documents_are_schema_tagged(self):
        decoder = json.JSONDecoder()
        text = GOLDEN_PATH.read_text()
        index = 0
        count = 0
        while index < len(text.rstrip()):
            doc, end = decoder.raw_decode(text, index)
            assert doc["schema"] == SCHEMA
            index = end + 1  # skip the trailing newline between documents
            count += 1
        assert count == len(DEVICES)
