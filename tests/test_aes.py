"""Tests for the pure-Python AES-128 implementation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CryptoError
from repro.security.aes import AES128, INV_SBOX, SBOX, expand_key

KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
FIPS_PT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")


class TestTables:
    def test_sbox_known_values(self):
        # FIPS-197 Figure 7 landmarks.
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_sbox_is_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse_sbox(self):
        assert all(INV_SBOX[SBOX[i]] == i for i in range(256))


class TestKeySchedule:
    def test_eleven_round_keys(self):
        keys = expand_key(KEY)
        assert len(keys) == 11
        assert all(len(rk) == 16 for rk in keys)

    def test_round_zero_is_key(self):
        assert bytes(expand_key(KEY)[0]) == KEY

    def test_fips_appendix_a_last_word(self):
        # Expanded key of the FIPS-197 A.1 example ends in b6 63 0c a6.
        keys = expand_key(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        assert bytes(keys[10][12:16]) == bytes.fromhex("b6630ca6")

    def test_wrong_key_size_rejected(self):
        with pytest.raises(CryptoError):
            expand_key(b"short")


class TestBlockCipher:
    def test_fips_197_vector(self):
        assert AES128(KEY).encrypt_block(FIPS_PT) == FIPS_CT

    def test_decrypt_inverts(self):
        assert AES128(KEY).decrypt_block(FIPS_CT) == FIPS_PT

    def test_wrong_block_size_rejected(self):
        cipher = AES128(KEY)
        with pytest.raises(CryptoError):
            cipher.encrypt_block(b"short")
        with pytest.raises(CryptoError):
            cipher.decrypt_block(b"x" * 17)

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=25)
    def test_encrypt_decrypt_roundtrip(self, key, block):
        cipher = AES128(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_different_keys_differ(self):
        assert AES128(KEY).encrypt_block(FIPS_PT) != AES128(b"\x01" * 16).encrypt_block(FIPS_PT)


class TestModes:
    def test_ofb_roundtrip(self):
        cipher = AES128(KEY)
        iv = bytes(range(16))
        data = b"Z-Wave S0 payload bytes over one block"
        assert cipher.decrypt_ofb(iv, cipher.encrypt_ofb(iv, data)) == data

    def test_ofb_is_involution(self):
        cipher = AES128(KEY)
        iv = b"\xaa" * 16
        ct = cipher.encrypt_ofb(iv, b"secret")
        assert cipher.encrypt_ofb(iv, ct) == b"secret"

    def test_ofb_requires_16_byte_iv(self):
        with pytest.raises(CryptoError):
            AES128(KEY).encrypt_ofb(b"short", b"data")

    def test_ctr_roundtrip(self):
        cipher = AES128(KEY)
        nonce = b"\x01" * 16
        data = b"counter mode data spanning blocks!" * 2
        assert cipher.decrypt_ctr(nonce, cipher.encrypt_ctr(nonce, data)) == data

    def test_ctr_counter_wraps(self):
        cipher = AES128(KEY)
        nonce = b"\xff" * 16
        assert len(cipher.encrypt_ctr(nonce, b"x" * 48)) == 48

    def test_ctr_requires_16_byte_nonce(self):
        with pytest.raises(CryptoError):
            AES128(KEY).encrypt_ctr(b"", b"data")

    def test_cbc_mac_deterministic(self):
        cipher = AES128(KEY)
        assert cipher.cbc_mac(b"message") == cipher.cbc_mac(b"message")

    def test_cbc_mac_distinguishes(self):
        cipher = AES128(KEY)
        assert cipher.cbc_mac(b"message a") != cipher.cbc_mac(b"message b")

    def test_cbc_mac_empty(self):
        assert len(AES128(KEY).cbc_mac(b"")) == 16

    @given(st.binary(max_size=80))
    @settings(max_examples=25)
    def test_ofb_roundtrip_property(self, data):
        cipher = AES128(KEY)
        iv = b"\x42" * 16
        assert cipher.decrypt_ofb(iv, cipher.encrypt_ofb(iv, data)) == data
