"""Lazy-decode correctness and decode-count regression (ISSUE 10).

The capture path stopped eagerly decoding every sniffed frame: a
:class:`~repro.zwave.frame.FrameView` borrows the raw buffer and decodes
fields on first touch.  Two contracts keep that safe:

* **field equivalence** — for 1000 seeded mutated frames, every field of
  the Table I mutation hierarchy (``FIELD_OPERATORS``) read through the
  lazy view equals the eager ``ZWaveFrame.decode(verify=False)`` value,
  and ``lenient_view`` returns ``None`` exactly when the eager lenient
  decode would raise;
* **decode-count regression** — a counting stub on ``ZWaveFrame.decode``
  proves a fuzzing run performs strictly fewer eager decodes than it
  captures frames (the retired capture path paid one decode per capture,
  so any regression to eager capture decoding trips this immediately).
"""

import random

import pytest

from repro.core.fuzzer import FuzzerConfig, FuzzingEngine
from repro.core.mutation import FIELD_OPERATORS, PositionSensitiveMutator
from repro.simulator.testbed import build_sut
from repro.zwave import constants as const
from repro.zwave.checksum import cs8
from repro.zwave.frame import FrameView, ZWaveFrame, lenient_view
from repro.zwave.registry import load_full_registry

N_FRAMES = 1000


def _mutated_raws():
    """1000 seeded frame buffers: mutator-derived payloads plus raw noise.

    The first half wraps genuine position-sensitive mutator output in
    encoded frames and then flips a few seeded bytes (checksum and LEN
    corruption included — the lenient parsers must agree on garbage too);
    the second half is unstructured random buffers across the full
    dissectable length range.
    """
    rng = random.Random(1009)
    mutator = PositionSensitiveMutator(load_full_registry(), random.Random(7))
    raws = []
    cases = mutator.generate(0x20)
    while len(raws) < N_FRAMES // 2:
        case = next(cases, None)
        if case is None:
            cases = mutator.generate(rng.choice((0x25, 0x26, 0x70, 0x71)))
            continue
        payload = case.encode()[: const.MAX_MAC_FRAME_SIZE - const.MAC_HEADER_SIZE - 1]
        frame = ZWaveFrame(
            home_id=rng.randrange(1 << 32),
            src=rng.randrange(256),
            dst=rng.randrange(256),
            payload=payload,
            sequence=rng.randrange(16),
        )
        raw = bytearray(frame.encode())
        for _ in range(rng.randrange(0, 4)):
            raw[rng.randrange(len(raw))] = rng.randrange(256)
        raws.append(bytes(raw))
    while len(raws) < N_FRAMES:
        length = rng.randrange(
            const.MAC_HEADER_SIZE + const.CS8_TRAILER_SIZE,
            const.MAX_MAC_FRAME_SIZE + 1,
        )
        raws.append(bytes(rng.randrange(256) for _ in range(length)))
    return raws


#: FIELD_OPERATORS key -> the attribute(s) both decoders must agree on.
#: P1 covers the flag recomposition (all four flag bits plus the header
#: type nibble round-trip), P2 the masked sequence.
FIELD_READS = {
    "H-ID": ("home_id",),
    "SRC": ("src",),
    "P1": ("p1", "header_type", "ack_request", "low_power", "speed_modified", "routed", "is_ack"),
    "P2": ("sequence",),
    "LEN": ("length",),
    "DST": ("dst", "is_broadcast"),
    "CMDCL": ("cmdcl",),
    "CMD": ("cmd",),
    "PARAM": ("params", "payload"),
    "CS": ("checksum",),
}


def test_field_reads_cover_the_mutation_hierarchy():
    assert set(FIELD_READS) == set(FIELD_OPERATORS)


class TestLazyFieldEquivalence:
    @pytest.fixture(scope="class")
    def raws(self):
        return _mutated_raws()

    def test_every_field_matches_eager_decode(self, raws):
        assert len(raws) == N_FRAMES
        for raw in raws:
            view = lenient_view(raw)
            assert view is not None  # all generated lengths are dissectable
            eager = ZWaveFrame.decode(raw, verify=False)
            for attrs in FIELD_READS.values():
                for attr in attrs:
                    assert getattr(view, attr) == getattr(eager, attr), (
                        attr,
                        raw.hex(),
                    )
            # The raw P2 byte (mask bits included) is only observable on
            # the view; pin it against the buffer directly.
            assert view.p2 == raw[const.P2_OFFSET]
            assert view.raw == raw
            assert view.to_frame() == eager

    def test_lenient_view_rejects_exactly_what_decode_rejects(self):
        rng = random.Random(31)
        for length in range(0, const.MAX_MAC_FRAME_SIZE + 20):
            raw = bytes(rng.randrange(256) for _ in range(length))
            view = lenient_view(raw)
            try:
                ZWaveFrame.decode(raw, verify=False)
                decodable = True
            except Exception:
                decodable = False
            assert (view is not None) == decodable, length

    def test_payload_is_memoised_not_recopied(self):
        frame = ZWaveFrame(home_id=0xCAFE, src=1, dst=2, payload=bytes([0x20, 0x02, 0xAA]))
        view = FrameView(frame.encode())
        assert view.payload is view.payload  # one slice, then the memo


class TestDecodeCountRegression:
    @pytest.fixture
    def counting(self, monkeypatch):
        decode_calls = []
        real_decode = ZWaveFrame.decode.__func__

        def counting_decode(cls, raw, verify=True):
            decode_calls.append(verify)
            return real_decode(cls, raw, verify)

        monkeypatch.setattr(ZWaveFrame, "decode", classmethod(counting_decode))
        return decode_calls

    def test_capture_path_performs_zero_decodes(self, counting):
        """Sniffing — even with field reads — never calls the eager codec."""
        sut = build_sut("D1", seed=3, traffic=False)
        sut.dongle.clear_captures()
        baseline = len(counting)
        frame = ZWaveFrame(
            home_id=sut.profile.home_id, src=2, dst=250, payload=bytes([0x20, 0x02])
        )
        raw = frame.encode()
        for _ in range(20):
            sut.medium.transmit(sut.controller.name, raw, rate_kbaud=100.0)
            sut.clock.advance(0.05)
        captures = sut.dongle.captures()
        assert len(captures) == 20
        # Touching lazy fields stays decode-free; only the slave that the
        # frame addressed may have paid a strict decode.
        for capture in captures:
            assert capture.decoded
            assert capture.frame.cmdcl == 0x20 and capture.frame.dst == 250
        slave_decodes = len(counting) - baseline
        assert slave_decodes <= 20  # never one per *capture* on top

    def test_fuzzing_run_decodes_strictly_fewer_than_deliveries(self, counting):
        """The eager world paid >= one decode per delivered reception
        (every capture parsed up front); the lazy view must keep total
        decode work strictly below the delivery count."""
        sut = build_sut("D1", seed=3, traffic=False)
        engine = FuzzingEngine(sut, FuzzerConfig())
        mutator = PositionSensitiveMutator(load_full_registry(), random.Random(3))
        result = engine.run([(0x20, mutator.generate(0x20), 120.0)], duration=120.0)

        captures = len(sut.dongle.captures())
        deliveries = sut.medium.stats["deliveries"]
        decodes = len(counting)
        assert result.packets_sent > 0 and captures > 0
        assert decodes < deliveries, (decodes, deliveries)
