"""Tests for the RF medium and the virtual transceiver."""

import random

import pytest

from repro.errors import RadioError, TransceiverError
from repro.radio.clock import SimClock
from repro.radio.medium import (
    PERFECT_LINK_DBM,
    RadioMedium,
    SENSITIVITY_DBM,
    loss_probability,
    received_power_dbm,
)
from repro.radio.transceiver import Transceiver
from repro.zwave.constants import Region
from repro.zwave.frame import ZWaveFrame, make_nop

HOME = 0xCB95A34A


def frame(payload=b"\x20\x02"):
    return ZWaveFrame(home_id=HOME, src=2, dst=1, payload=payload)


class TestPropagationModel:
    def test_power_decreases_with_distance(self):
        assert received_power_dbm(1.0) > received_power_dbm(10.0) > received_power_dbm(70.0)

    def test_loss_zero_on_strong_links(self):
        assert loss_probability(PERFECT_LINK_DBM) == 0.0
        assert loss_probability(-40.0) == 0.0

    def test_loss_total_below_sensitivity(self):
        assert loss_probability(SENSITIVITY_DBM) == 1.0
        assert loss_probability(-120.0) == 1.0

    def test_loss_monotonic_in_between(self):
        mid = (PERFECT_LINK_DBM + SENSITIVITY_DBM) / 2
        assert 0.0 < loss_probability(mid) < 1.0

    def test_attack_range_70m_is_marginal_but_alive(self):
        # The paper's attacker operates from 10-70 metres.
        rssi = received_power_dbm(70.0)
        assert SENSITIVITY_DBM < rssi
        assert loss_probability(rssi) < 1.0


class TestMedium:
    def setup_method(self):
        self.clock = SimClock()
        self.medium = RadioMedium(self.clock, random.Random(3))
        self.received = []

    def attach(self, name="rx", position=(5.0, 0.0), region=Region.US):
        self.medium.attach(name, position, region, self.received.append)

    def test_delivery_after_airtime(self):
        self.attach()
        self.medium.attach("tx", (0.0, 0.0), Region.US, lambda r: None)
        airtime = self.medium.transmit("tx", frame().encode(), 100.0)
        assert self.received == []
        self.clock.advance(airtime + 0.001)
        assert len(self.received) == 1
        assert self.received[0].raw == frame().encode()

    def test_sender_does_not_hear_itself(self):
        self.attach("only")
        self.medium.attach("tx", (0.0, 0.0), Region.US, self.received.append)
        self.medium.transmit("tx", frame().encode(), 100.0)
        self.clock.advance(1.0)
        assert len(self.received) == 1  # only the other endpoint

    def test_region_mismatch_blocks_delivery(self):
        self.attach(region=Region.EU)
        self.medium.attach("tx", (0.0, 0.0), Region.US, lambda r: None)
        self.medium.transmit("tx", frame().encode(), 100.0)
        self.clock.advance(1.0)
        assert self.received == []

    def test_out_of_range_blocks_delivery(self):
        self.attach(position=(100000.0, 0.0))
        self.medium.attach("tx", (0.0, 0.0), Region.US, lambda r: None)
        self.medium.transmit("tx", frame().encode(), 100.0)
        self.clock.advance(1.0)
        assert self.received == []
        assert self.medium.stats["losses"] == 1

    def test_disabled_endpoint_misses_frames(self):
        self.attach()
        self.medium.attach("tx", (0.0, 0.0), Region.US, lambda r: None)
        self.medium.set_enabled("rx", False)
        self.medium.transmit("tx", frame().encode(), 100.0)
        self.clock.advance(1.0)
        assert self.received == []

    def test_move_changes_link(self):
        self.attach(position=(100000.0, 0.0))
        self.medium.attach("tx", (0.0, 0.0), Region.US, lambda r: None)
        self.medium.move("rx", (5.0, 0.0))
        self.medium.transmit("tx", frame().encode(), 100.0)
        self.clock.advance(1.0)
        assert len(self.received) == 1

    def test_duplicate_attach_rejected(self):
        self.attach()
        with pytest.raises(RadioError):
            self.attach()

    def test_unknown_transmitter_rejected(self):
        with pytest.raises(RadioError):
            self.medium.transmit("ghost", b"\x00" * 12, 100.0)

    def test_unknown_endpoint_controls_rejected(self):
        with pytest.raises(RadioError):
            self.medium.set_enabled("ghost", True)
        with pytest.raises(RadioError):
            self.medium.move("ghost", (0, 0))

    def test_detach(self):
        self.attach()
        self.medium.detach("rx")
        assert "rx" not in self.medium.endpoints()

    def test_stats_accumulate(self):
        self.attach()
        self.medium.attach("tx", (0.0, 0.0), Region.US, lambda r: None)
        self.medium.transmit("tx", frame().encode(), 100.0)
        self.clock.advance(1.0)
        stats = self.medium.stats
        assert stats["transmissions"] == 1
        assert stats["deliveries"] == 1

    def test_bit_accurate_mode_roundtrips(self):
        clock = SimClock()
        medium = RadioMedium(clock, random.Random(4), bit_accurate=True)
        received = []
        medium.attach("rx", (3.0, 0.0), Region.US, received.append)
        medium.attach("tx", (0.0, 0.0), Region.US, lambda r: None)
        medium.transmit("tx", frame().encode(), 100.0)
        clock.advance(1.0)
        assert received and received[0].raw == frame().encode()

    def test_collisions_destroy_overlapping_transmissions(self):
        clock = SimClock()
        medium = RadioMedium(clock, random.Random(8), collisions=True)
        received = []
        medium.attach("rx", (3.0, 0.0), Region.US, received.append)
        medium.attach("a", (0.0, 0.0), Region.US, lambda r: None)
        medium.attach("b", (1.0, 0.0), Region.US, lambda r: None)
        medium.transmit("a", frame().encode(), 100.0)
        medium.transmit("b", frame().encode(), 100.0)  # same instant: collide
        clock.advance(1.0)
        assert received == []
        assert medium.stats["collisions"] == 1

    def test_collisions_spare_sequential_transmissions(self):
        clock = SimClock()
        medium = RadioMedium(clock, random.Random(8), collisions=True)
        received = []
        medium.attach("rx", (3.0, 0.0), Region.US, received.append)
        medium.attach("a", (0.0, 0.0), Region.US, lambda r: None)
        airtime = medium.transmit("a", frame().encode(), 100.0)
        clock.advance(airtime + 0.001)
        medium.transmit("a", frame().encode(), 100.0)
        clock.advance(1.0)
        assert len(received) == 2
        assert medium.stats["collisions"] == 0

    def test_collisions_off_by_default(self):
        clock = SimClock()
        medium = RadioMedium(clock, random.Random(8))
        received = []
        medium.attach("rx", (3.0, 0.0), Region.US, received.append)
        medium.attach("a", (0.0, 0.0), Region.US, lambda r: None)
        medium.attach("b", (1.0, 0.0), Region.US, lambda r: None)
        medium.transmit("a", frame().encode(), 100.0)
        medium.transmit("b", frame().encode(), 100.0)
        clock.advance(1.0)
        assert len(received) == 2

    def test_noisy_channel_flips_bits(self):
        clock = SimClock()
        medium = RadioMedium(clock, random.Random(5), noise_bit_rate=0.02)
        received = []
        medium.attach("rx", (3.0, 0.0), Region.US, received.append)
        medium.attach("tx", (0.0, 0.0), Region.US, lambda r: None)
        for _ in range(20):
            medium.transmit("tx", frame().encode(), 100.0)
        clock.advance(5.0)
        assert any(r.bit_errors > 0 for r in received) or len(received) < 20


class TestTransceiver:
    def setup_method(self):
        self.clock = SimClock()
        self.medium = RadioMedium(self.clock, random.Random(6))
        self.dongle = Transceiver(self.medium, self.clock, position=(10.0, 0.0))

    def test_unconfigured_inject_rejected(self):
        with pytest.raises(TransceiverError):
            self.dongle.inject(make_nop(HOME, 15, 1))

    def test_invalid_rate_rejected(self):
        with pytest.raises(TransceiverError):
            self.dongle.configure(Region.US, 12.3)

    def test_invalid_region_rejected(self):
        with pytest.raises(TransceiverError):
            self.dongle.configure("US", 100.0)

    def test_configure_then_inject(self):
        self.dongle.configure(Region.US, 100.0)
        received = []
        self.medium.attach("ctrl", (0.0, 0.0), Region.US, received.append)
        self.dongle.inject_and_wait(make_nop(HOME, 15, 1))
        assert len(received) == 1
        assert self.dongle.frames_injected == 1

    def test_inject_raw_malformed(self):
        self.dongle.configure(Region.US, 100.0)
        received = []
        self.medium.attach("ctrl", (0.0, 0.0), Region.US, received.append)
        self.dongle.inject_raw(b"\xde\xad\xbe\xef\x00\x41\x00\xff\x01\x20\x02\x00")
        self.clock.advance(0.1)
        assert len(received) == 1  # the medium carries garbage too

    def test_promiscuous_capture(self):
        self.dongle.configure(Region.US, 100.0)
        self.medium.attach("ctrl", (0.0, 0.0), Region.US, lambda r: None)
        self.medium.transmit("ctrl", frame().encode(), 100.0)
        self.clock.advance(0.1)
        captures = self.dongle.captures()
        assert len(captures) == 1
        assert captures[0].frame is not None
        assert captures[0].frame.home_id == HOME

    def test_undecodable_capture_kept_raw(self):
        self.dongle.configure(Region.US, 100.0)
        self.medium.attach("ctrl", (0.0, 0.0), Region.US, lambda r: None)
        self.medium.transmit("ctrl", b"\x01\x02\x03", 100.0)
        self.clock.advance(0.1)
        captures = self.dongle.captures()
        assert len(captures) == 1
        assert captures[0].frame is None

    def test_drain_clears_buffer(self):
        self.dongle.configure(Region.US, 100.0)
        self.medium.attach("ctrl", (0.0, 0.0), Region.US, lambda r: None)
        self.medium.transmit("ctrl", frame().encode(), 100.0)
        self.clock.advance(0.1)
        assert len(self.dongle.drain_captures()) == 1
        assert self.dongle.captures() == []

    def test_move_to(self):
        self.dongle.configure(Region.US, 100.0)
        self.dongle.move_to((70.0, 0.0))
        assert self.dongle.position == (70.0, 0.0)
