"""Differential equivalence matrix: the event-engine migration oracle.

The batched event engine (one arg-carrying clock event per transmission
fire time, replaying per-endpoint records in listener order) replaced the
legacy one-closure-per-delivery loop.  This matrix is the proof the swap
changed *nothing observable*: for every cell of (device x mode x
scheduler x fault-plan x workers) the campaign, session and chaos
documents plus the obs counter snapshot are rendered under each engine in
``repro.radio.medium.ENGINES`` and compared **byte for byte**.

While both engines existed the matrix ran legacy-vs-batched; now that
legacy is deleted, ``ENGINES`` has one entry and each cell runs twice
under the batched engine — the same comparison machinery becomes the
engine's run-to-run determinism re-run.  The committed goldens
(``session_golden.json``, ``faults_golden.json``, ``scheduler_golden.json``,
``perf_golden.json``) were produced by the legacy engine and re-verified
unchanged after the swap, so they remain the permanent cross-engine pin;
this suite guards the within-engine half of that contract.
"""

import json
import os
from types import SimpleNamespace

import pytest

from repro.core.campaign import Mode, run_campaign
from repro.core.resultio import campaign_to_wire, dumps_wire, session_to_wire
from repro.core.session import run_sessions
from repro.core.trials import run_trials
from repro.faults.plan import canonical_mixed_plan
from repro.faults.report import build_chaos_document, dumps_chaos_document
from repro.radio import medium as medium_mod
from repro.radio.clock import SimClock
from repro.radio.medium import RadioMedium
from repro.zwave.constants import Region

DURATION = 600.0  # 10 simulated minutes: all the early bugs, fast cells
SEED = 0


def _engine_runs():
    """The engine list each cell runs under (doubled when only one is left).

    Two entries or more: a differential comparison across engines.  One
    entry: the same cell twice under it — a determinism re-run with the
    identical comparison machinery.
    """
    engines = medium_mod.ENGINES
    return engines if len(engines) > 1 else engines * 2


def _under_engine(engine, build):
    """Evaluate *build* with ``ZCOVER_ENGINE`` pinned to *engine*.

    The environment variable (not a monkeypatched module global) is the
    real switch: worker processes of the ``workers=2`` cells inherit it,
    so the pooled path runs the same engine as the parent.
    """
    previous = os.environ.get("ZCOVER_ENGINE")
    os.environ["ZCOVER_ENGINE"] = engine
    try:
        return build()
    finally:
        if previous is None:
            del os.environ["ZCOVER_ENGINE"]
        else:
            os.environ["ZCOVER_ENGINE"] = previous


def _obs_slice(result):
    """Canonical rendering of a campaign's metrics counter snapshot."""
    counters = result.metrics.counters if result.metrics is not None else {}
    return json.dumps(
        {key: counters[key] for key in sorted(counters)},
        sort_keys=True,
        separators=(",", ":"),
    )


# -- matrix cells ---------------------------------------------------------------


def _campaign_cell(device, mode, scheduler, with_faults):
    plan = canonical_mixed_plan() if with_faults else None
    result = run_campaign(
        device=device,
        mode=mode,
        duration=DURATION,
        seed=SEED,
        scheduler=scheduler,
        fault_plan=plan,
    )
    return dumps_wire(campaign_to_wire(result)) + "\n" + _obs_slice(result)


def _chaos_cell(device):
    plan = canonical_mixed_plan()
    summary = run_trials(
        device=device,
        mode=Mode.FULL,
        n_trials=2,
        duration=DURATION,
        base_seed=SEED,
        workers=1,
        fault_plan=plan,
    )
    return dumps_chaos_document(build_chaos_document(summary, plan, SEED))


def _session_cell(device):
    return dumps_wire(session_to_wire(run_sessions(device, seed=SEED)))


def _workers_cell(device, workers):
    summary = run_trials(
        device=device,
        mode=Mode.FULL,
        n_trials=2,
        duration=DURATION,
        base_seed=SEED,
        workers=workers,
    )
    assert summary.failures == []
    return (
        "".join(dumps_wire(campaign_to_wire(trial)) for trial in summary.trials)
        + "\n"
        + summary.render()
    )


CELLS = (
    ("campaign-D1-FULL-static", lambda: _campaign_cell("D1", Mode.FULL, "static", False)),
    ("campaign-D1-BETA-static", lambda: _campaign_cell("D1", Mode.BETA, "static", False)),
    ("campaign-D1-GAMMA-static", lambda: _campaign_cell("D1", Mode.GAMMA, "static", False)),
    ("campaign-D2-FULL-coverage", lambda: _campaign_cell("D2", Mode.FULL, "coverage", False)),
    ("campaign-D2-FULL-faultplan", lambda: _campaign_cell("D2", Mode.FULL, "static", True)),
    ("chaos-D1-trials", lambda: _chaos_cell("D1")),
    ("sessions-D1", lambda: _session_cell("D1")),
    ("trials-D1-workers2", lambda: _workers_cell("D1", 2)),
)


@pytest.mark.parametrize("name,build", CELLS, ids=[name for name, _ in CELLS])
def test_matrix_cell_documents_byte_identical(name, build):
    """Every engine run of a cell renders the exact same bytes."""
    documents = [_under_engine(engine, build) for engine in _engine_runs()]
    reference = documents[0]
    for document in documents[1:]:
        assert document == reference, f"engine drift in matrix cell {name}"


def test_workers_and_engines_commute():
    """serial x engines and --workers 2 x engines: all four bytes equal.

    The strongest cell: worker count and engine choice must be mutually
    invisible, so one document stands for the whole 2x2 square.
    """
    documents = [
        _under_engine(engine, lambda: _workers_cell("D2", workers))
        for engine in _engine_runs()
        for workers in (1, 2)
    ]
    reference = documents[0]
    for document in documents[1:]:
        assert document == reference


# -- medium-level scripted scenario ---------------------------------------------
#
# Campaigns run the clean-channel fast path; this cell drives the
# bit-accurate decoder, channel noise, collision cancellation and
# fault-injected duplicate/delay offsets — every branch of the batch
# delivery loop — and fingerprints all of it.


class _DuplicatingInjector:
    """Minimal fault hook: duplicate every 3rd frame, delay every 4th."""

    def __init__(self):
        self.count = 0

    def on_transmit(self, sender, frame_bytes):
        self.count += 1
        return SimpleNamespace(
            drop=False,
            corrupt=None,
            extra_delay=0.002 if self.count % 4 == 0 else 0.0,
            duplicate=self.count % 3 == 0,
        )


def _medium_fingerprint():
    clock = SimClock()
    medium = RadioMedium(
        clock, noise_bit_rate=0.002, bit_accurate=True, collisions=True
    )
    medium.fault_injector = _DuplicatingInjector()
    received = []

    def listener(name):
        return lambda reception: received.append(
            (
                name,
                reception.raw.hex(),
                round(reception.rssi_dbm, 6),
                round(reception.timestamp, 9),
                reception.bit_errors,
            )
        )

    medium.attach("ctrl", (0.0, 0.0), Region.EU, listener("ctrl"))
    medium.attach("near", (3.0, 0.0), Region.EU, listener("near"))
    medium.attach("edge", (95.0, 0.0), Region.EU, listener("edge"))
    medium.attach("deaf", (500.0, 0.0), Region.EU, listener("deaf"))
    medium.attach("us", (1.0, 1.0), Region.US, listener("us"))

    frame = bytes(range(18))
    for step in range(40):
        sender = ("ctrl", "near", "edge")[step % 3]
        medium.transmit(sender, frame + bytes([step]), rate_kbaud=100.0)
        if step == 10:
            # Two back-to-back transmissions collide and cancel each other.
            medium.transmit("near", frame, rate_kbaud=100.0)
        if step == 20:
            medium.set_enabled("near", False)
        if step == 25:
            medium.set_enabled("near", True)
        clock.advance(0.01)
    clock.advance(1.0)
    return json.dumps([received, medium.stats], sort_keys=True)


def test_medium_scenario_fingerprint_identical():
    fingerprints = [
        _under_engine(engine, _medium_fingerprint) for engine in _engine_runs()
    ]
    reference = fingerprints[0]
    for fingerprint in fingerprints[1:]:
        assert fingerprint == reference
