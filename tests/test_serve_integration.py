"""Black-box byte-identity harness for the job service (`zcover serve`).

The service under test is a real one: :class:`ServiceThread` boots the
asyncio server on an ephemeral port of a background thread and every
assertion below talks to it over actual HTTP sockets via the stdlib
client — no internal shortcuts.  The oracle is
:func:`repro.serve.results.direct_document`: the same spec run
in-process, serially, through the ordinary ``run_trials`` /
``run_sessions`` entry points.  The contract, for every job kind:

    bytes(GET /jobs/<id>/result) == bytes(oracle document)

including after the service is killed mid-trial-set (``stop(drain=
False)`` cancels the runner between unit harvests — the in-process
equivalent of ``kill -9`` that still shares the checkpoint file) and a
fresh service resumes from the write-ahead checkpoint.

The pool runs with ``workers=2`` throughout, so these tests also pin
served-parallel against oracle-serial — the full PR 1–8 determinism
stack exercised through the service's front door.
"""

import functools
import json
import os

import pytest

from repro.core.resultio import WIRE_VERSION
from repro.radio.clock import wall_monotonic, wall_sleep
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.protocol import JOB_DONE, JobSpec
from repro.serve.results import direct_document, dumps_result_document
from repro.serve.service import ServiceThread

SPEC_TRIALS = JobSpec(
    kind="trials", device="D1", mode="full", seed=0, trials=2, hours=0.05
)
SPEC_SESSIONS = JobSpec(
    kind="sessions", device="D1", seed=3, trials=6, flows=("inclusion", "s0")
)
SPEC_CHAOS = JobSpec(
    kind="chaos",
    device="D1",
    mode="full",
    seed=0,
    trials=2,
    hours=0.05,
    fault_plan="canonical",
)
SPEC_RESUME = JobSpec(
    kind="trials", device="D2", mode="full", seed=0, trials=4, hours=0.05
)

WAIT_S = 300.0


@functools.lru_cache(maxsize=None)
def oracle_bytes(spec):
    """The serial in-process oracle document for *spec*, as bytes.

    Cached per spec (specs are frozen dataclasses): several tests compare
    against the same oracle and the campaign only needs to run once.
    """
    return dumps_result_document(direct_document(spec)).encode("utf-8")


@pytest.fixture(scope="module")
def service():
    handle = ServiceThread(workers=2, port=0).start()
    yield handle
    handle.stop(drain=True)


@pytest.fixture(scope="module")
def client(service):
    return ServeClient(port=service.port)


class TestByteIdentity:
    """Served result documents equal the serial oracle, byte for byte."""

    @pytest.mark.parametrize(
        "spec",
        [SPEC_TRIALS, SPEC_SESSIONS, SPEC_CHAOS],
        ids=["trials", "sessions", "chaos"],
    )
    def test_served_bytes_equal_oracle(self, client, spec):
        status = client.submit(spec)
        final = client.wait(status.job_id, timeout=WAIT_S)
        assert final.state == JOB_DONE
        assert final.units_done == final.units_total > 0
        assert client.result_bytes(status.job_id) == oracle_bytes(spec)

    def test_result_is_canonical_json(self, client):
        status = client.submit(SPEC_TRIALS)
        client.wait(status.job_id, timeout=WAIT_S)
        payload = client.result_bytes(status.job_id)
        doc = json.loads(payload.decode("utf-8"))
        assert doc["schema"] == "zcover-serve-result"
        assert doc["job_id"] == status.job_id
        assert doc["spec"]["wire_version"] == WIRE_VERSION
        # canonical form: sorted keys, indent 2, trailing newline
        recoded = json.dumps(doc, sort_keys=True, indent=2) + "\n"
        assert payload == recoded.encode("utf-8")


class TestProtocolSurface:
    """Idempotence, structured rejection, progress, and 404s over HTTP."""

    def test_duplicate_submission_is_idempotent(self, client):
        first = client.submit(SPEC_TRIALS)
        second = client.submit(SPEC_TRIALS)
        assert second.job_id == first.job_id
        assert second.sequence == first.sequence

    def test_invalid_spec_rejected_with_field(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.submit(JobSpec(kind="chaos", device="D1"))  # no fault plan
        assert excinfo.value.status == 400
        assert excinfo.value.payload["error"]["kind"] == "spec"
        assert excinfo.value.payload["error"]["field"] == "fault_plan"

    def test_future_wire_version_rejected(self, service):
        import http.client

        from repro.core.resultio import dumps_wire, jobspec_to_wire

        wire = jobspec_to_wire(SPEC_TRIALS)
        wire["wire_version"] = WIRE_VERSION + 1
        connection = http.client.HTTPConnection("127.0.0.1", service.port, timeout=30)
        try:
            connection.request(
                "POST",
                "/jobs",
                body=dumps_wire(wire).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
        finally:
            connection.close()
        assert response.status == 400
        assert payload["error"]["kind"] == "wire-version"
        assert payload["error"]["found"] == WIRE_VERSION + 1
        assert payload["error"]["expected"] == WIRE_VERSION

    def test_unknown_job_and_path_are_404(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.status("job-ffffffff")
        assert excinfo.value.status == 404
        status, _body = client._request("GET", "/nothing/here")
        assert status == 404

    def test_progress_streams_merged_counters(self, client):
        status = client.submit(SPEC_TRIALS)
        client.wait(status.job_id, timeout=WAIT_S)
        progress = client.progress(status.job_id)
        assert progress["schema"] == "zcover-serve-progress"
        assert progress["units_done"] == progress["units_total"]
        assert progress["counters"]  # campaign counters merged per unit
        assert any(key.startswith("fuzzer.") for key in progress["counters"])

    def test_service_metrics_count_jobs(self, client):
        status, body = client._request("GET", "/metrics")
        assert status == 200
        doc = json.loads(body.decode("utf-8"))
        assert doc["counters"]["serve.jobs.accepted"] >= 1
        assert doc["counters"]["serve.jobs.completed"] >= 1

    def test_healthz(self, client):
        health = client.healthz()
        assert health["ok"] is True


class TestKillAndResume:
    """Kill the service mid-trial-set; a resumed one is byte-identical."""

    def test_abrupt_kill_then_checkpoint_resume(self, tmp_path):
        checkpoint = os.fspath(tmp_path / "serve.ckpt")
        first = ServiceThread(
            workers=2, port=0, checkpoint_path=checkpoint
        ).start()
        client = ServeClient(port=first.port)
        status = client.submit(SPEC_RESUME)
        deadline = wall_monotonic() + WAIT_S
        while True:
            current = client.status(status.job_id)
            if 0 < current.units_done < current.units_total:
                break
            assert current.state != JOB_DONE, "job finished before the kill"
            assert wall_monotonic() < deadline
            wall_sleep(0.02)
        first.stop(drain=False)  # simulated kill: no drain, no farewell

        # The write-ahead log holds the completed prefix (and only it).
        lines = [
            json.loads(line)
            for line in open(checkpoint, encoding="utf-8")
            if line.strip()
        ]
        kinds = [entry["record"]["kind"] for entry in lines]
        assert kinds[0] == "job"
        assert kinds.count("unit") >= 1
        assert "done" not in kinds

        second = ServiceThread(
            workers=2, port=0, checkpoint_path=checkpoint
        ).start()
        try:
            resumed = ServeClient(port=second.port)
            final = resumed.wait(status.job_id, timeout=WAIT_S)
            assert final.state == JOB_DONE
            assert resumed.result_bytes(status.job_id) == oracle_bytes(SPEC_RESUME)
        finally:
            second.stop(drain=True)

        # Third life: the finished job is restored terminal, result intact,
        # without re-running anything.
        third = ServiceThread(
            workers=2, port=0, checkpoint_path=checkpoint
        ).start()
        try:
            restored = ServeClient(port=third.port)
            assert restored.status(status.job_id).state == JOB_DONE
            assert restored.result_bytes(status.job_id) == oracle_bytes(SPEC_RESUME)
        finally:
            third.stop(drain=True)

    def test_graceful_drain_requeues_unfinished_job(self, tmp_path):
        checkpoint = os.fspath(tmp_path / "drain.ckpt")
        first = ServiceThread(
            workers=2, port=0, checkpoint_path=checkpoint
        ).start()
        client = ServeClient(port=first.port)
        status = client.submit(SPEC_RESUME)
        deadline = wall_monotonic() + WAIT_S
        while client.status(status.job_id).units_done < 1:
            assert wall_monotonic() < deadline
            wall_sleep(0.02)
        first.stop(drain=True)  # SIGTERM path: in-flight units finish

        second = ServiceThread(
            workers=2, port=0, checkpoint_path=checkpoint
        ).start()
        try:
            resumed = ServeClient(port=second.port)
            final = resumed.wait(status.job_id, timeout=WAIT_S)
            assert final.state == JOB_DONE
            assert resumed.result_bytes(status.job_id) == oracle_bytes(SPEC_RESUME)
        finally:
            second.stop(drain=True)
