"""Tests for the command-class data model."""

import pytest
from hypothesis import given, strategies as st

from repro.zwave.cmdclass import (
    Cluster,
    Command,
    CommandClass,
    CommandKind,
    CONTROLLER_CLUSTERS,
    Direction,
    Parameter,
    ParamKind,
    make_get_set_report,
)


class TestParameter:
    def test_enum_requires_values(self):
        with pytest.raises(ValueError):
            Parameter("mode", 0, kind=ParamKind.ENUM)

    def test_negative_position_rejected(self):
        with pytest.raises(ValueError):
            Parameter("x", -1)

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            Parameter("x", 0, kind=ParamKind.RANGE, low=10, high=5)

    def test_enum_legality(self):
        param = Parameter("mode", 0, kind=ParamKind.ENUM, enum_values=(0, 0xFF))
        assert param.is_legal(0)
        assert param.is_legal(0xFF)
        assert not param.is_legal(0x42)
        assert param.legal_values() == (0, 0xFF)

    def test_node_id_legality(self):
        param = Parameter("node", 0, kind=ParamKind.NODE_ID)
        assert param.is_legal(1)
        assert param.is_legal(232)
        assert not param.is_legal(0)
        assert not param.is_legal(233)

    def test_range_legality(self):
        param = Parameter("level", 0, kind=ParamKind.RANGE, low=0, high=9)
        assert param.is_legal(0) and param.is_legal(9)
        assert not param.is_legal(10)

    def test_opaque_accepts_all_bytes(self):
        param = Parameter("blob", 0)
        assert all(param.is_legal(v) for v in range(256))
        assert param.illegal_values() == ()

    def test_out_of_byte_range_is_illegal(self):
        param = Parameter("blob", 0)
        assert not param.is_legal(-1)
        assert not param.is_legal(256)

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    def test_legal_and_illegal_partition_byte_space(self, low, high):
        if low > high:
            low, high = high, low
        param = Parameter("x", 0, kind=ParamKind.RANGE, low=low, high=high)
        legal = set(param.legal_values())
        illegal = set(param.illegal_values())
        assert legal | illegal == set(range(256))
        assert not legal & illegal


class TestCommand:
    def test_duplicate_positions_rejected(self):
        with pytest.raises(ValueError):
            Command(1, "BAD", params=(Parameter("a", 0), Parameter("b", 0)))

    def test_descending_positions_rejected(self):
        with pytest.raises(ValueError):
            Command(1, "BAD", params=(Parameter("a", 1), Parameter("b", 0)))

    def test_id_range(self):
        with pytest.raises(ValueError):
            Command(256, "BAD")

    def test_min_payload_len(self):
        cmd = Command(1, "SET", params=(Parameter("v", 0),))
        assert cmd.min_payload_len == 3

    def test_param_at(self):
        p0, p1 = Parameter("a", 0), Parameter("b", 1)
        cmd = Command(1, "X", params=(p0, p1))
        assert cmd.param_at(0) is p0
        assert cmd.param_at(1) is p1
        assert cmd.param_at(2) is None


class TestCommandClass:
    def test_duplicate_command_ids_rejected(self):
        with pytest.raises(ValueError):
            CommandClass(0x20, "X", commands=(Command(1, "A"), Command(1, "B")))

    def test_command_lookup(self):
        cls = CommandClass(0x20, "X", commands=(Command(1, "A"), Command(3, "B")))
        assert cls.command(1).name == "A"
        assert cls.command(2) is None
        assert cls.command_ids() == (1, 3)
        assert cls.command_count == 2

    def test_controller_relevance_by_cluster(self):
        for cluster in CONTROLLER_CLUSTERS:
            assert CommandClass(0x20, "X", cluster=cluster).controller_relevant
        assert CommandClass(0x20, "X", cluster=Cluster.PROPRIETARY).controller_relevant
        assert not CommandClass(0x20, "X", cluster=Cluster.SLAVE_ONLY).controller_relevant

    def test_id_range(self):
        with pytest.raises(ValueError):
            CommandClass(300, "X")


class TestTrioBuilder:
    def test_shape(self):
        trio = make_get_set_report()
        assert [c.name for c in trio] == ["SET", "GET", "REPORT"]
        assert trio[0].kind is CommandKind.SET
        assert trio[1].kind is CommandKind.GET
        assert trio[2].kind is CommandKind.REPORT

    def test_directions(self):
        trio = make_get_set_report()
        assert trio[0].direction is Direction.CONTROLLING
        assert trio[2].direction is Direction.SUPPORTING

    def test_get_has_no_params(self):
        trio = make_get_set_report()
        assert trio[1].params == ()
        assert len(trio[0].params) == 1

    def test_custom_enum_value(self):
        trio = make_get_set_report(value_kind=ParamKind.ENUM, enum_values=(0, 1))
        assert trio[0].params[0].legal_values() == (0, 1)
