"""Unit and property tests for the CS-8 and CRC-16 integrity checks."""

from hypothesis import given, strategies as st

from repro.zwave.checksum import crc16, cs8, verify_crc16, verify_cs8


class TestCs8:
    def test_empty_input_is_seed(self):
        assert cs8(b"") == 0xFF

    def test_known_value(self):
        assert cs8(b"\x01\x02\x03") == 0xFF ^ 0x01 ^ 0x02 ^ 0x03

    def test_single_byte(self):
        assert cs8(b"\x00") == 0xFF
        assert cs8(b"\xff") == 0x00

    def test_accepts_iterables(self):
        assert cs8([0x01, 0x02]) == cs8(b"\x01\x02")

    def test_verify_accepts_correct_checksum(self):
        data = b"hello zwave"
        assert verify_cs8(data, cs8(data))

    def test_verify_rejects_wrong_checksum(self):
        data = b"hello zwave"
        assert not verify_cs8(data, cs8(data) ^ 0x01)

    @given(st.binary(max_size=64))
    def test_result_is_byte(self, data):
        assert 0 <= cs8(data) <= 0xFF

    @given(st.binary(min_size=1, max_size=64))
    def test_order_sensitive_via_xor_pairs(self, data):
        # Appending the checksum byte always yields a zero-sum frame: the
        # seed and the data XOR cancel against the embedded checksum.
        total = cs8(bytes(data) + bytes([cs8(data)]))
        assert total == 0x00

    @given(st.binary(max_size=64), st.integers(min_value=0, max_value=255))
    def test_single_byte_flip_always_detected(self, data, flip):
        if not data:
            return
        corrupted = bytearray(data)
        corrupted[0] ^= flip
        if flip == 0:
            assert cs8(bytes(corrupted)) == cs8(data)
        else:
            assert cs8(bytes(corrupted)) != cs8(data)


class TestCrc16:
    def test_known_aug_ccitt_vector(self):
        # CRC-16/AUG-CCITT("123456789") = 0xE5CC.
        assert crc16(b"123456789") == 0xE5CC

    def test_empty_input_is_init(self):
        assert crc16(b"") == 0x1D0F

    def test_verify_roundtrip(self):
        data = b"\x01\x02\x03\x04"
        assert verify_crc16(data, crc16(data))
        assert not verify_crc16(data, crc16(data) ^ 1)

    @given(st.binary(max_size=128))
    def test_result_is_16_bits(self, data):
        assert 0 <= crc16(data) <= 0xFFFF

    @given(st.binary(min_size=1, max_size=64), st.integers(min_value=1, max_value=255))
    def test_single_byte_corruption_detected(self, data, flip):
        corrupted = bytearray(data)
        corrupted[-1] ^= flip
        assert crc16(bytes(corrupted)) != crc16(data)

    @given(st.binary(max_size=64))
    def test_deterministic(self, data):
        assert crc16(data) == crc16(data)
