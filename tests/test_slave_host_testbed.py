"""Tests for slave devices, host programs and testbed construction."""

import pytest

from repro.errors import SimulatorError
from repro.simulator.host import HostKind, HostProgram, HostState
from repro.simulator.testbed import (
    CONTROLLER_IDS,
    LISTED_15,
    LISTED_17,
    LOCK_NODE_ID,
    PROFILES,
    SWITCH_NODE_ID,
    build_sut,
    supported_cmdcls,
)
from repro.zwave.application import ApplicationPayload
from repro.zwave.frame import ZWaveFrame
from repro.zwave.nif import encode_nif_request, parse_nif_report


def send_to(sut, node_id, payload, src=1):
    frame = ZWaveFrame(
        home_id=sut.profile.home_id, src=src, dst=node_id, payload=payload
    )
    sut.dongle.clear_captures()
    sut.dongle.inject(frame)
    sut.clock.advance(0.2)
    return [
        c.frame
        for c in sut.dongle.captures()
        if c.frame and not c.frame.is_ack and c.frame.payload
    ]


class TestSwitch:
    def test_starts_off(self, quiet_sut):
        assert not quiet_sut.switch.on

    def test_set_turns_on(self, quiet_sut):
        send_to(quiet_sut, SWITCH_NODE_ID, b"\x25\x01\xff")
        assert quiet_sut.switch.on
        send_to(quiet_sut, SWITCH_NODE_ID, b"\x25\x01\x00")
        assert not quiet_sut.switch.on

    def test_get_reports_state(self, quiet_sut):
        quiet_sut.switch.on = True
        replies = send_to(quiet_sut, SWITCH_NODE_ID, b"\x25\x02")
        assert any(f.payload == b"\x25\x03\xff" for f in replies)

    def test_basic_set_aliases_switch(self, quiet_sut):
        send_to(quiet_sut, SWITCH_NODE_ID, b"\x20\x01\xff")
        assert quiet_sut.switch.on

    def test_answers_nif(self, quiet_sut):
        replies = send_to(quiet_sut, SWITCH_NODE_ID, encode_nif_request().encode())
        infos = [
            parse_nif_report(ApplicationPayload.decode(f.payload)) for f in replies
        ]
        infos = [i for i in infos if i]
        assert len(infos) == 1
        assert not infos[0].is_controller
        assert 0x25 in infos[0].listed_cmdcls

    def test_ignores_foreign_home(self, quiet_sut):
        frame = ZWaveFrame(home_id=0x12345678, src=1, dst=SWITCH_NODE_ID, payload=b"\x25\x01\xff")
        quiet_sut.dongle.inject(frame)
        quiet_sut.clock.advance(0.1)
        assert not quiet_sut.switch.on


class TestDoorLock:
    def test_starts_locked(self, quiet_sut):
        assert quiet_sut.lock.locked

    def test_operation_set_unlocks(self, quiet_sut):
        replies = send_to(quiet_sut, LOCK_NODE_ID, b"\x62\x01\x00")
        assert not quiet_sut.lock.locked
        assert any(f.payload[0] == 0x62 and f.payload[1] == 0x03 for f in replies)

    def test_operation_get(self, quiet_sut):
        replies = send_to(quiet_sut, LOCK_NODE_ID, b"\x62\x02")
        assert any(f.payload == b"\x62\x03\xff\x00" for f in replies)

    def test_lists_s2_in_nif(self, quiet_sut):
        replies = send_to(quiet_sut, LOCK_NODE_ID, encode_nif_request().encode())
        infos = [parse_nif_report(ApplicationPayload.decode(f.payload)) for f in replies]
        infos = [i for i in infos if i]
        assert 0x9F in infos[0].listed_cmdcls

    def test_unsolicited_reports_flow_s2_encapsulated(self, sut):
        """The lock's status reports travel as S2 encapsulations: the
        sniffer sees 0x9F frames, never a plaintext 0x62 report."""
        sut.dongle.clear_captures()
        sut.clock.advance(100.0)
        from_lock = [
            c.frame
            for c in sut.dongle.captures()
            if c.frame and c.frame.src == LOCK_NODE_ID and c.frame.payload
        ]
        assert any(f.payload[0] == 0x9F for f in from_lock)
        assert not any(f.payload[0] == 0x62 for f in from_lock)
        # ...and the controller actually decrypted at least one of them.
        assert sut.controller.s2_messaging.stats.received_encapsulated > 0


class TestHostProgram:
    def test_starts_running(self):
        host = HostProgram(HostKind.PC_CONTROLLER)
        assert host.state is HostState.RUNNING
        assert host.responsive

    def test_crash_and_restart(self):
        host = HostProgram(HostKind.PC_CONTROLLER)
        host.crash(10.0, "bug #06")
        assert host.state is HostState.CRASHED
        assert host.crash_count == 1
        host.restart(12.0)
        assert host.responsive

    def test_dos_and_restart(self):
        host = HostProgram(HostKind.SMARTPHONE_APP)
        host.deny_service(5.0)
        assert host.state is HostState.DENIED
        assert not host.responsive
        host.restart()
        assert host.responsive

    def test_dos_does_not_downgrade_crash(self):
        host = HostProgram(HostKind.PC_CONTROLLER)
        host.crash(1.0)
        host.deny_service(2.0)
        assert host.state is HostState.CRASHED

    def test_event_log(self):
        host = HostProgram(HostKind.PC_CONTROLLER)
        host.notify(1.0, "lock reported")
        host.crash(2.0)
        kinds = [e.kind for e in host.events()]
        assert kinds == ["notify", "crash"]


class TestTestbed:
    def test_table2_inventory(self):
        assert len(PROFILES) == 9
        assert len(CONTROLLER_IDS) == 7
        assert PROFILES["D8"].device_type == "Door Lock"
        assert PROFILES["D9"].device_type == "Smart Switch"
        assert not PROFILES["D9"].encryption

    def test_table4_home_ids(self):
        expected = {
            "D1": 0xE7DE3F3D, "D2": 0xCD007171, "D3": 0xCB51722D,
            "D4": 0xC7E9DD54, "D5": 0xF4C3754D, "D6": 0xCB95A34A,
            "D7": 0xEDC87EE4,
        }
        for device, home_id in expected.items():
            assert PROFILES[device].home_id == home_id

    def test_listed_class_counts(self):
        assert len(LISTED_17) == 17
        assert len(LISTED_15) == 15
        for device in ("D1", "D2", "D4", "D6"):
            assert len(PROFILES[device].listed_cmdcls) == 17
        for device in ("D3", "D5", "D7"):
            assert len(PROFILES[device].listed_cmdcls) == 15

    def test_supported_is_45(self):
        assert len(supported_cmdcls()) == 45
        assert 0x01 in supported_cmdcls()
        assert 0x02 in supported_cmdcls()

    def test_bug_class_cmdcls_are_listed(self):
        # The β ablation needs 0x59/0x5A/0x73/0x7A/0x86/0x9F listed.
        for cmdcl in (0x59, 0x5A, 0x73, 0x7A, 0x86, 0x9F):
            assert cmdcl in LISTED_15

    def test_build_sut_rejects_slaves(self):
        with pytest.raises(SimulatorError):
            build_sut("D8")
        with pytest.raises(SimulatorError):
            build_sut("D99")

    def test_sut_pairs_two_slaves(self, quiet_sut):
        assert quiet_sut.controller.nvm.node_ids() == (LOCK_NODE_ID, SWITCH_NODE_ID)
        lock = quiet_sut.controller.nvm.get(LOCK_NODE_ID)
        assert lock.secure
        assert lock.wakeup_interval == 3600

    def test_hosts_match_device_kind(self):
        assert build_sut("D1", traffic=False).host.kind is HostKind.PC_CONTROLLER
        assert build_sut("D6", traffic=False).host.kind is HostKind.SMARTPHONE_APP

    def test_d1_to_d5_expose_all_fifteen_bugs(self):
        for device in ("D1", "D2", "D3", "D4", "D5"):
            assert len(PROFILES[device].zero_day_ids) == 15

    def test_hubs_lack_pc_program_bugs(self):
        for device in ("D6", "D7"):
            ids = set(PROFILES[device].zero_day_ids)
            assert 6 not in ids and 13 not in ids
            assert len(ids) == 13

    def test_deterministic_construction(self):
        one = build_sut("D1", seed=5, traffic=False)
        two = build_sut("D1", seed=5, traffic=False)
        assert one.golden_snapshot() == two.golden_snapshot()

    def test_attacker_distance_configurable(self):
        sut = build_sut("D1", seed=1, attacker_distance_m=70.0, traffic=False)
        assert sut.dongle.position == (70.0, 0.0)

    def test_without_slaves(self):
        sut = build_sut("D1", seed=1, with_slaves=False)
        sut.dongle.clear_captures()
        sut.clock.advance(100.0)
        slave_frames = [
            c for c in sut.dongle.captures() if c.frame and c.frame.src in (2, 3)
        ]
        assert slave_frames == []
