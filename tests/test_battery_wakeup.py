"""Tests for sleeping devices, the wake-up queue, and bug #12's impact."""

import pytest

from repro.simulator.battery import BatterySensor, WakeupQueue
from repro.simulator.memory import NodeRecord
from repro.simulator.testbed import build_sut
from repro.zwave.application import ApplicationPayload
from repro.zwave.frame import ZWaveFrame

SENSOR_ID = 7


@pytest.fixture
def setting():
    sut = build_sut("D1", seed=30, traffic=False)
    sensor = BatterySensor(
        "battery-sensor",
        sut.profile.home_id,
        SENSOR_ID,
        sut.clock,
        sut.medium,
        position=(6.0, 6.0),
        wakeup_interval=600.0,
    )
    sut.controller.nvm.add(
        NodeRecord(node_id=SENSOR_ID, generic=0x20, wakeup_interval=600, name="sensor")
    )
    queue = WakeupQueue(sut.controller)
    return sut, sensor, queue


class TestSleepCycle:
    def test_born_asleep(self, setting):
        sut, sensor, _ = setting
        assert not sensor.awake

    def test_sleeping_radio_misses_frames(self, setting):
        sut, sensor, _ = setting
        frame = ZWaveFrame(
            home_id=sut.profile.home_id, src=1, dst=SENSOR_ID, payload=b"\x20\x02"
        )
        sut.medium.transmit(sut.profile.idx, frame.encode(), 100.0)
        sut.clock.advance(1.0)
        assert sensor.commands_received == []

    def test_wakes_on_interval_and_notifies(self, setting):
        sut, sensor, _ = setting
        sut.dongle.clear_captures()
        sut.clock.advance(601.0)
        assert sensor.awake
        assert sensor.wakeups == 1
        notifications = [
            c.frame
            for c in sut.dongle.captures()
            if c.frame and c.frame.src == SENSOR_ID and c.frame.payload[:2] == b"\x84\x07"
        ]
        assert notifications

    def test_sleeps_again_after_window(self, setting):
        sut, sensor, _ = setting
        sut.clock.advance(601.0)
        assert sensor.awake
        sut.clock.advance(15.0)
        assert not sensor.awake

    def test_interval_set_command(self, setting):
        sut, sensor, queue = setting
        queue.queue_command(
            SENSOR_ID, ApplicationPayload(0x84, 0x04, bytes([0x00, 0x01, 0x2C, 0x01]))
        )
        sut.clock.advance(601.0)
        assert sensor.wakeup_interval == 300.0


class TestWakeupQueue:
    def test_commands_delivered_on_wakeup(self, setting):
        sut, sensor, queue = setting
        assert queue.queue_command(SENSOR_ID, ApplicationPayload(0x20, 0x01, b"\xff"))
        assert queue.pending_for(SENSOR_ID) == 1
        sut.clock.advance(601.0)
        assert queue.delivered == 1
        assert queue.pending_for(SENSOR_ID) == 0
        assert any(cmd[:2] == b"\x20\x01" for cmd in sensor.commands_received)

    def test_queue_rejects_unknown_node(self, setting):
        _, _, queue = setting
        assert not queue.queue_command(99, ApplicationPayload(0x20, 0x01, b"\xff"))
        assert queue.rejected == 1


class TestBug12Impact:
    """The concrete meaning of bug #12's "Infinite" duration."""

    def test_wakeup_wipe_strands_the_device(self, setting):
        sut, sensor, queue = setting
        # The attacker wipes the sensor's wake-up interval (bug #12).
        attack = ZWaveFrame(
            home_id=sut.profile.home_id, src=0x0F, dst=1,
            payload=bytes([0x01, 0x0D, SENSOR_ID, 0x00]),
        )
        sut.dongle.inject(attack)
        sut.clock.advance(0.2)
        assert sut.controller.nvm.get(SENSOR_ID).wakeup_interval is None
        # The controller can no longer schedule anything for the sensor.
        assert not queue.queue_command(SENSOR_ID, ApplicationPayload(0x20, 0x02))
        # The device still wakes — but nothing is ever waiting for it.
        sut.clock.advance(700.0)
        assert sensor.wakeups >= 1
        assert queue.delivered == 0

    def test_manual_intervention_restores_service(self, setting):
        sut, sensor, queue = setting
        attack = ZWaveFrame(
            home_id=sut.profile.home_id, src=0x0F, dst=1,
            payload=bytes([0x01, 0x0D, SENSOR_ID, 0x00]),
        )
        sut.dongle.inject(attack)
        sut.clock.advance(0.2)
        # The paper: "requiring manual intervention" — the operator
        # re-enters the interval.
        sut.controller.nvm.update(SENSOR_ID, wakeup_interval=600)
        assert queue.queue_command(SENSOR_ID, ApplicationPayload(0x20, 0x02))
        sut.clock.advance(601.0)
        assert queue.delivered == 1
