"""Tests for the S0 and S2 transport encapsulations."""

import random

import pytest

from repro.errors import AuthenticationError, NonceError
from repro.security.s0 import NONCE_TABLE_SIZE, S0Context, S0Encapsulated, TEMP_KEY
from repro.security.s2 import (
    S2Bootstrap,
    S2Context,
    S2Encapsulated,
    SpanState,
    generate_network_key,
)
from repro.security.kdf import ckdf_expand

KEY = b"NetworkKey123456"


def s0_pair(seed=1):
    rng = random.Random(seed)
    return S0Context(KEY, rng), S0Context(KEY, random.Random(seed + 1))


class TestS0Nonces:
    def test_issue_returns_8_bytes(self):
        ctx, _ = s0_pair()
        assert len(ctx.issue_nonce()) == 8

    def test_consume_forgets(self):
        ctx, _ = s0_pair()
        nonce = ctx.issue_nonce()
        assert ctx.consume_nonce(nonce[0]) == nonce
        with pytest.raises(NonceError):
            ctx.consume_nonce(nonce[0])

    def test_unknown_nonce_id_raises(self):
        ctx, _ = s0_pair()
        with pytest.raises(NonceError):
            ctx.consume_nonce(0x42)

    def test_table_bounded(self):
        ctx, _ = s0_pair()
        for _ in range(NONCE_TABLE_SIZE * 2):
            ctx.issue_nonce()
        assert ctx.outstanding_nonces <= NONCE_TABLE_SIZE


class TestS0Encapsulation:
    def test_roundtrip(self):
        sender, receiver = s0_pair()
        nonce = receiver.issue_nonce()
        encap = sender.encapsulate(b"open the door", nonce, src=15, dst=1)
        assert receiver.decapsulate(encap, src=15, dst=1) == b"open the door"

    def test_wire_codec_roundtrip(self):
        sender, receiver = s0_pair()
        nonce = receiver.issue_nonce()
        encap = sender.encapsulate(b"payload", nonce, 2, 1)
        parsed = S0Encapsulated.decode(encap.encode())
        assert parsed == encap

    def test_decode_too_short_raises(self):
        with pytest.raises(AuthenticationError):
            S0Encapsulated.decode(b"short")

    def test_tampered_ciphertext_rejected(self):
        sender, receiver = s0_pair()
        nonce = receiver.issue_nonce()
        encap = sender.encapsulate(b"payload", nonce, 2, 1)
        bad = S0Encapsulated(
            encap.sender_nonce,
            bytes([encap.ciphertext[0] ^ 1]) + encap.ciphertext[1:],
            encap.receiver_nonce_id,
            encap.mac,
        )
        with pytest.raises(AuthenticationError):
            receiver.decapsulate(bad, 2, 1)

    def test_wrong_addresses_rejected(self):
        sender, receiver = s0_pair()
        nonce = receiver.issue_nonce()
        encap = sender.encapsulate(b"payload", nonce, 2, 1)
        with pytest.raises(AuthenticationError):
            receiver.decapsulate(encap, 3, 1)

    def test_replay_rejected_after_nonce_consumed(self):
        sender, receiver = s0_pair()
        nonce = receiver.issue_nonce()
        encap = sender.encapsulate(b"payload", nonce, 2, 1)
        receiver.decapsulate(encap, 2, 1)
        with pytest.raises(NonceError):
            receiver.decapsulate(encap, 2, 1)

    def test_wrong_key_rejected(self):
        sender, _ = s0_pair()
        other = S0Context(b"DifferentKey0000", random.Random(9))
        nonce = other.issue_nonce()
        encap = sender.encapsulate(b"payload", nonce, 2, 1)
        with pytest.raises(AuthenticationError):
            other.decapsulate(encap, 2, 1)

    def test_temp_key_is_all_zero(self):
        # The S0 inclusion weakness: the temporary key is fixed.
        assert TEMP_KEY == bytes(16)


def span_pair(seed=5):
    a = S2Context(KEY, node_id=2, rng=random.Random(seed))
    b = S2Context(KEY, node_id=1, rng=random.Random(seed + 1))
    ea = a.generate_entropy(1)
    eb = b.generate_entropy(2)
    a.establish_span(1, ea, eb, inbound=False)
    b.establish_span(2, ea, eb, inbound=True)
    return a, b


class TestSpan:
    def test_same_inputs_same_nonces(self):
        keys = ckdf_expand(KEY)
        one = SpanState(keys.nonce_personalization, b"a" * 16, b"b" * 16)
        two = SpanState(keys.nonce_personalization, b"a" * 16, b"b" * 16)
        assert [one.next_nonce() for _ in range(5)] == [two.next_nonce() for _ in range(5)]

    def test_nonces_never_repeat_in_sequence(self):
        keys = ckdf_expand(KEY)
        span = SpanState(keys.nonce_personalization, b"a" * 16, b"b" * 16)
        nonces = [span.next_nonce() for _ in range(64)]
        assert len(set(nonces)) == 64

    def test_peek_does_not_advance(self):
        keys = ckdf_expand(KEY)
        span = SpanState(keys.nonce_personalization, b"a" * 16, b"b" * 16)
        peeked = span.peek_nonce()
        assert span.counter == 0
        assert span.next_nonce() == peeked

    def test_bad_entropy_size_rejected(self):
        keys = ckdf_expand(KEY)
        with pytest.raises(NonceError):
            SpanState(keys.nonce_personalization, b"short", b"b" * 16)


class TestS2Encapsulation:
    HOME = 0xE7DE3F3D

    def test_roundtrip(self):
        a, b = span_pair()
        encap = a.encapsulate(b"lock the door", peer=1, src=2, dst=1, home_id=self.HOME)
        assert b.decapsulate(encap, peer=2, src=2, dst=1, home_id=self.HOME) == b"lock the door"

    def test_wire_codec(self):
        a, b = span_pair()
        encap = a.encapsulate(b"x", 1, 2, 1, self.HOME)
        assert S2Encapsulated.decode(encap.encode()) == encap

    def test_decode_too_short(self):
        with pytest.raises(AuthenticationError):
            S2Encapsulated.decode(b"\x01")

    def test_sequence_increments(self):
        a, b = span_pair()
        first = a.encapsulate(b"x", 1, 2, 1, self.HOME)
        second = a.encapsulate(b"y", 1, 2, 1, self.HOME)
        assert second.seq_no == (first.seq_no + 1) % 256
        assert b.decapsulate(first, 2, 2, 1, self.HOME) == b"x"
        assert b.decapsulate(second, 2, 2, 1, self.HOME) == b"y"

    def test_lost_frames_tolerated_within_window(self):
        a, b = span_pair()
        a.encapsulate(b"lost", 1, 2, 1, self.HOME)  # never delivered
        encap = a.encapsulate(b"arrives", 1, 2, 1, self.HOME)
        assert b.decapsulate(encap, 2, 2, 1, self.HOME) == b"arrives"

    def test_desync_beyond_window_raises(self):
        a, b = span_pair()
        for _ in range(S2Context.SPAN_WINDOW + 1):
            a.encapsulate(b"lost", 1, 2, 1, self.HOME)
        encap = a.encapsulate(b"late", 1, 2, 1, self.HOME)
        with pytest.raises(NonceError):
            b.decapsulate(encap, 2, 2, 1, self.HOME)

    def test_no_span_raises(self):
        ctx = S2Context(KEY, node_id=1)
        with pytest.raises(NonceError):
            ctx.encapsulate(b"x", 5, 1, 5, self.HOME)
        with pytest.raises(NonceError):
            ctx.decapsulate(S2Encapsulated(0, 0, b"\x00" * 10), 5, 5, 1, self.HOME)

    def test_aad_binds_addresses(self):
        a, b = span_pair()
        encap = a.encapsulate(b"payload", 1, 2, 1, self.HOME)
        with pytest.raises(NonceError):
            b.decapsulate(encap, 2, 7, 1, self.HOME)  # spoofed src

    def test_aad_binds_home_id(self):
        a, b = span_pair()
        encap = a.encapsulate(b"payload", 1, 2, 1, self.HOME)
        with pytest.raises(NonceError):
            b.decapsulate(encap, 2, 2, 1, 0xDEADBEEF)

    def test_reset_spans(self):
        a, b = span_pair()
        a.reset_spans()
        with pytest.raises(NonceError):
            a.encapsulate(b"x", 1, 2, 1, self.HOME)


class TestS2Bootstrap:
    def test_temp_keys_agree(self):
        alice = S2Bootstrap(random.Random(1))
        bob = S2Bootstrap(random.Random(2))
        assert alice.derive_temp_key(bob.public, initiator=True) == bob.derive_temp_key(
            alice.public, initiator=False
        )

    def test_dsk_pin_is_16_bits(self):
        boot = S2Bootstrap(random.Random(3))
        assert 0 <= boot.dsk_pin <= 0xFFFF

    def test_network_key_generation(self):
        key = generate_network_key(random.Random(4))
        assert len(key) == 16
        assert key != generate_network_key(random.Random(5))


class TestSpanDesyncRecovery:
    """How the S2 SPAN machinery behaves *around* a desynchronisation —
    the session fuzzer's SV06 (nonce-entropy reuse) rests on these
    semantics staying exact."""

    HOME = 0xE7DE3F3D

    def test_failed_window_search_does_not_advance_the_span(self):
        # A forged frame that verifies nowhere in the window must leave
        # the receiver state untouched: the next genuine frame decodes.
        a, b = span_pair()
        genuine = a.encapsulate(b"genuine", 1, 2, 1, self.HOME)
        with pytest.raises(NonceError):
            b.decapsulate(S2Encapsulated(0, 0, b"\x00" * 12), 2, 2, 1, self.HOME)
        assert b.decapsulate(genuine, 2, 2, 1, self.HOME) == b"genuine"

    def test_fresh_entropy_exchange_recovers_from_desync(self):
        a, b = span_pair()
        for _ in range(S2Context.SPAN_WINDOW + 1):
            a.encapsulate(b"lost", 1, 2, 1, self.HOME)
        with pytest.raises(NonceError):
            b.decapsulate(
                a.encapsulate(b"late", 1, 2, 1, self.HOME), 2, 2, 1, self.HOME
            )
        # The spec's resynchronisation path: a fresh nonce-report exchange
        # instantiates new SPANs and traffic flows again.
        ea = a.generate_entropy(1)
        eb = b.generate_entropy(2)
        a.establish_span(1, ea, eb, inbound=False)
        b.establish_span(2, ea, eb, inbound=True)
        encap = a.encapsulate(b"resynced", 1, 2, 1, self.HOME)
        assert b.decapsulate(encap, 2, 2, 1, self.HOME) == b"resynced"

    def test_reset_spans_forces_a_full_handshake(self):
        a, b = span_pair()
        stale = a.encapsulate(b"stale", 1, 2, 1, self.HOME)
        b.reset_spans()
        assert not b.has_span(2, inbound=True)
        assert b.pending_entropy(2) is None
        with pytest.raises(NonceError):
            b.decapsulate(stale, 2, 2, 1, self.HOME)

    def test_recovery_spans_do_not_reuse_old_entropy(self):
        # generate_entropy after a desync must draw *new* randomness —
        # reusing the handshake entropy is exactly planted bug SV06.
        a = S2Context(KEY, node_id=2, rng=random.Random(11))
        first = a.generate_entropy(1)
        second = a.generate_entropy(1)
        assert first != second
