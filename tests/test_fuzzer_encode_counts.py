"""Regression tests pinning the fuzzer's encode-once injection contract.

The engine encodes every test case exactly once — at injection time — and
hands the bytes to the bug recorder on a finding.  An earlier revision
re-encoded the case inside ``_record``, doubling the serialisation cost of
every finding; these tests pin the call count with a counting stub so the
duplicate encode cannot silently return.
"""

import pytest

from repro.core.fuzzer import FuzzerConfig, FuzzingEngine
from repro.core.mutation import MutationOperator
from repro.simulator.testbed import build_sut
from repro.zwave.application import ApplicationPayload

#: A benign BASIC GET: the controller answers, no oracle fires.
BENIGN = bytes([0x20, 0x02])
#: A proprietary NVM-write: deterministically trips the memory oracle.
MEMORY_BUG = bytes([0x01, 0x0D, 0x02, 0x03])


class CountingCase:
    """A :class:`TestCase` stand-in whose ``encode()`` tallies every call."""

    def __init__(self, raw: bytes):
        self.payload = ApplicationPayload.decode(raw)
        self.operator = MutationOperator.SEED
        self.position = 0
        self.note = "encode-count stub"
        self.encode_calls = 0
        self._raw = raw

    def encode(self) -> bytes:
        self.encode_calls += 1
        return self._raw


@pytest.fixture
def engine():
    sut = build_sut("D1", seed=3, traffic=False)
    return FuzzingEngine(sut, FuzzerConfig())


def run_cases(engine, raws):
    cases = [CountingCase(raw) for raw in raws]
    result = engine.run([(raws[0][0], iter(cases), None)], duration=600.0)
    return cases, result


class TestEncodeOnce:
    def test_benign_cases_encode_exactly_once(self, engine):
        cases, result = run_cases(engine, [BENIGN] * 5)
        assert result.packets_sent == 5
        assert [c.encode_calls for c in cases] == [1] * 5

    def test_finding_cases_encode_exactly_once(self, engine):
        """The recorder reuses the injection bytes instead of re-encoding."""
        cases, result = run_cases(engine, [MEMORY_BUG, BENIGN, MEMORY_BUG])
        assert len(result.detections) >= 1
        assert [c.encode_calls for c in cases] == [1, 1, 1]

    def test_recorded_payload_is_injected_bytes(self, engine):
        cases, result = run_cases(engine, [MEMORY_BUG])
        assert cases[0].encode_calls == 1
        assert len(result.bug_log) >= 1
        assert result.bug_log.records()[0].payload_hex == MEMORY_BUG.hex()
