"""Unit tests for the observability metrics collector and merge API.

Also the satellite-5 lock: the obs snapshot dataclasses must be part of
the wire-safety (W301/W302) vocabulary — i.e. module-level imports of
``core/resultio.py`` — and the whole tree, obs included, must lint clean.
"""

from pathlib import Path

import pytest

from repro.lint.base import collect_sources
from repro.lint.runner import run_lint
from repro.lint.wiresafety import WireSafetyAnalyzer
from repro.obs.metrics import (
    HISTOGRAM_BOUNDS,
    HISTOGRAM_KEYS,
    MetricsCollector,
    MetricsSnapshot,
    SpanStats,
    active_collector,
    collecting,
    cover,
    coverage_key,
    format_frames_per_bug,
    frames_per_bug,
    harness_snapshot,
    inc,
    merge_all,
    merge_snapshots,
    observe,
    parse_coverage_key,
)

PACKAGE_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"


class TestCollector:
    def test_counters_accumulate(self):
        c = MetricsCollector()
        c.inc("a")
        c.inc("a", 4)
        c.inc("b", 0)
        snap = c.snapshot()
        assert snap.counters == {"a": 5, "b": 0}

    def test_gauge_keeps_maximum(self):
        c = MetricsCollector()
        c.gauge_max("g", 2.0)
        c.gauge_max("g", 1.0)
        c.gauge_max("g", 3.5)
        assert c.snapshot().gauges == {"g": 3.5}

    def test_histogram_buckets(self):
        c = MetricsCollector()
        for value in (1, 2, 3, 9, 100):
            c.observe("h", value)
        hist = c.snapshot().histograms["h"]
        assert set(hist) == set(HISTOGRAM_KEYS)
        assert hist["le_1"] == 1
        assert hist["le_2"] == 1
        assert hist["le_4"] == 1  # 3 falls in (2, 4]
        assert hist["le_16"] == 1  # 9 falls in (8, 16]
        assert hist["inf"] == 1  # 100 beyond the last bound
        assert hist["count"] == 5
        assert hist["sum"] == 115

    def test_histogram_bounds_cover_edges(self):
        c = MetricsCollector()
        for bound in HISTOGRAM_BOUNDS:
            c.observe("h", bound)
        hist = c.snapshot().histograms["h"]
        for bound in HISTOGRAM_BOUNDS:
            assert hist[f"le_{bound}"] == 1
        assert hist["inf"] == 0

    def test_coverage_keys(self):
        c = MetricsCollector()
        c.cover(0x25, 0x01)
        c.cover(0x25, 0x01)
        c.cover(0x01)
        snap = c.snapshot()
        assert snap.coverage == {"25:01": 2, "01:-": 1}
        assert parse_coverage_key("25:01") == (0x25, 0x01)
        assert parse_coverage_key("01:-") == (0x01, None)
        assert coverage_key(0x25, 0x01) == "25:01"
        assert coverage_key(0x01) == "01:-"

    def test_span_aggregation(self):
        c = MetricsCollector()
        c.record_span("s", 100)
        c.record_span("s", 50)
        assert c.snapshot().spans == {"s": SpanStats(count=2, sim_time_us=150)}

    def test_snapshot_is_key_sorted_and_detached(self):
        c = MetricsCollector()
        c.inc("z")
        c.inc("a")
        snap = c.snapshot()
        assert list(snap.counters) == ["a", "z"]
        c.inc("a")  # mutating the collector must not touch the snapshot
        assert snap.counters["a"] == 1

    def test_reset(self):
        c = MetricsCollector()
        c.inc("a")
        c.cover(0x25)
        c.reset()
        assert c.snapshot().empty


class TestActiveStack:
    def test_module_helpers_are_noops_without_collector(self):
        assert active_collector() is None
        inc("never")  # must not raise
        observe("never", 1)
        cover(0x25, 0x01)

    def test_collecting_routes_and_restores(self):
        c = MetricsCollector()
        with collecting(c):
            assert active_collector() is c
            inc("hits")
            observe("lens", 3)
            cover(0x25, 0x01)
        assert active_collector() is None
        snap = c.snapshot()
        assert snap.counters == {"hits": 1}
        assert snap.coverage == {"25:01": 1}

    def test_nesting_uses_innermost(self):
        outer, inner = MetricsCollector(), MetricsCollector()
        with collecting(outer):
            with collecting(inner):
                inc("x")
            inc("y")
        assert inner.snapshot().counters == {"x": 1}
        assert outer.snapshot().counters == {"y": 1}

    def test_stack_restored_on_exception(self):
        c = MetricsCollector()
        with pytest.raises(RuntimeError):
            with collecting(c):
                raise RuntimeError("boom")
        assert active_collector() is None


class TestMerge:
    def test_counters_add_gauges_max(self):
        a, b = MetricsCollector(), MetricsCollector()
        a.inc("n", 2)
        a.gauge_max("g", 5.0)
        b.inc("n", 3)
        b.inc("only-b")
        b.gauge_max("g", 2.0)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged.counters == {"n": 5, "only-b": 1}
        assert merged.gauges == {"g": 5.0}

    def test_histograms_and_coverage_add(self):
        a, b = MetricsCollector(), MetricsCollector()
        a.observe("h", 1)
        a.cover(0x25, 0x01)
        b.observe("h", 100)
        b.cover(0x25, 0x01)
        b.cover(0x86)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged.histograms["h"]["count"] == 2
        assert merged.histograms["h"]["sum"] == 101
        assert merged.coverage == {"25:01": 2, "86:-": 1}

    def test_spans_add(self):
        a, b = MetricsCollector(), MetricsCollector()
        a.record_span("s", 10)
        b.record_span("s", 20)
        b.record_span("t", 5)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged.spans["s"] == SpanStats(count=2, sim_time_us=30)
        assert merged.spans["t"] == SpanStats(count=1, sim_time_us=5)

    def test_merge_all_empty(self):
        assert merge_all([]).empty

    def test_empty_is_identity(self):
        c = MetricsCollector()
        c.inc("a")
        c.observe("h", 3)
        c.cover(0x25, 0x01)
        c.record_span("s", 7)
        snap = c.snapshot()
        assert merge_snapshots(snap, MetricsSnapshot()) == snap
        assert merge_snapshots(MetricsSnapshot(), snap) == snap


class TestDerived:
    def test_frames_per_bug(self):
        c = MetricsCollector()
        c.inc("fuzzer.frames_tx", 800)
        c.inc("bugs.unique", 8)
        snap = c.snapshot()
        assert frames_per_bug(snap) == 100.0
        assert format_frames_per_bug(snap) == "100.0"

    def test_frames_per_bug_without_bugs(self):
        c = MetricsCollector()
        c.inc("fuzzer.frames_tx", 800)
        c.inc("bugs.unique", 0)
        assert frames_per_bug(c.snapshot()) is None
        assert format_frames_per_bug(c.snapshot()) == "n/a"
        assert frames_per_bug(MetricsSnapshot()) is None


class TestHarnessSnapshot:
    def test_clean_run(self):
        snap = harness_snapshot(units=3, attempts=[1, 1, 1], failure_categories=[])
        assert snap.counters["parallel.units"] == 3
        assert snap.counters["parallel.unit_attempts"] == 3
        assert snap.counters["parallel.unit_retries"] == 0
        assert snap.counters["parallel.unit_failures"] == 0
        assert snap.histograms["parallel.attempts_per_unit"]["count"] == 3

    def test_retries_and_failures(self):
        snap = harness_snapshot(
            units=3, attempts=[1, 2, 3], failure_categories=["timeout"]
        )
        assert snap.counters["parallel.unit_attempts"] == 6
        assert snap.counters["parallel.unit_retries"] == 3
        assert snap.counters["parallel.unit_failures"] == 1
        assert snap.counters["parallel.failures.timeout"] == 1


class TestWireVocabulary:
    """Satellite 5: the obs snapshots are first-class wire citizens."""

    def test_snapshot_types_are_wire_roots(self):
        sources = collect_sources(PACKAGE_ROOT)
        analyzer = WireSafetyAnalyzer()
        index, _aliases, _functions = analyzer._build_index(sources)
        roots = analyzer._wire_roots(sources, index)
        assert "MetricsSnapshot" in roots
        assert "SpanStats" in roots

    def test_obs_sources_are_scanned(self):
        rels = {source.rel for source in collect_sources(PACKAGE_ROOT)}
        assert "obs/metrics.py" in rels
        assert "obs/tracing.py" in rels
        assert "obs/export.py" in rels

    def test_lint_reports_zero_findings_with_obs(self):
        report = run_lint(root=PACKAGE_ROOT)
        assert report.findings == []
        assert report.exit_code == 0
