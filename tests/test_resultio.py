"""Wire serialisation of campaign results: lossless, lean, registry-free.

Results cross process boundaries when campaigns are sharded, so the wire
form must (a) round-trip without losing a bit, (b) be JSON-clean so no
live object can hide inside, and (c) never drag heavyweight state — in
particular the :class:`~repro.zwave.registry.SpecRegistry` — through the
worker pipes.
"""

import json
import pickle

import pytest

from repro.core.baseline import VFuzzBaseline
from repro.core.campaign import Mode, run_campaign
from repro.core.resultio import (
    WIRE_VERSION,
    WireError,
    campaign_from_wire,
    campaign_to_wire,
    dumps_wire,
    loads_wire,
    vfuzz_from_wire,
    vfuzz_to_wire,
)
from repro.simulator.testbed import build_sut

DURATION = 600.0


@pytest.fixture(scope="module")
def result():
    return run_campaign("D1", Mode.FULL, duration=DURATION, seed=3)


@pytest.fixture(scope="module")
def vfuzz_result():
    sut = build_sut("D2", seed=3)
    return VFuzzBaseline(sut, seed=3).run(DURATION)


class TestCampaignWire:
    def test_roundtrip_is_lossless(self, result):
        restored = campaign_from_wire(campaign_to_wire(result))
        assert restored == result
        assert restored.matched_bug_ids == result.matched_bug_ids
        assert restored.discovery_timeline() == result.discovery_timeline()
        assert restored.to_dict() == result.to_dict()

    def test_wire_is_json_clean(self, result):
        text = dumps_wire(campaign_to_wire(result))
        assert campaign_from_wire(loads_wire(text)) == result
        # json round trip proves there is no live object in the tree
        assert json.loads(text) == campaign_to_wire(result)

    def test_double_roundtrip_is_stable(self, result):
        once = campaign_to_wire(result)
        twice = campaign_to_wire(campaign_from_wire(once))
        assert dumps_wire(once) == dumps_wire(twice)

    def test_wire_version_guard(self, result):
        stale = campaign_to_wire(result)
        stale["wire_version"] = WIRE_VERSION + 1
        with pytest.raises(WireError):
            campaign_from_wire(stale)

    def test_signature_keys_survive(self, result):
        restored = campaign_from_wire(campaign_to_wire(result))
        assert list(restored.unique) == list(result.unique)
        for signature in restored.unique:
            cmdcl, kind, duration = signature
            assert isinstance(cmdcl, int) and isinstance(kind, str)
            assert duration is None or isinstance(duration, int)


class TestNoRegistryCrossesTheBoundary:
    def test_pickled_result_has_no_registry(self, result):
        # Campaign results are plain data all the way down: pickling one
        # must not serialise a SpecRegistry (or any simulator machinery).
        blob = pickle.dumps(result)
        for forbidden in (b"SpecRegistry", b"CommandClass", b"simulator"):
            assert forbidden not in blob

    def test_wire_pickle_is_compact(self, result):
        # The wire form of a short campaign is a few tens of KB; a
        # dragged-in registry would add the full 122-class spec. Guard
        # with a generous ceiling so growth is deliberate.
        assert len(pickle.dumps(campaign_to_wire(result))) < 200_000

    def test_unique_findings_resolve_bugs_without_registry(self, result):
        restored = campaign_from_wire(campaign_to_wire(result))
        # bug/bug_id are recomputed from the ZERO_DAYS table on access.
        assert {u.bug_id for u in restored.unique.values()} == {
            u.bug_id for u in result.unique.values()
        }


class TestVFuzzWire:
    def test_roundtrip_is_lossless(self, vfuzz_result):
        restored = vfuzz_from_wire(vfuzz_to_wire(vfuzz_result))
        assert restored == vfuzz_result
        assert restored.unique_vulnerabilities == vfuzz_result.unique_vulnerabilities

    def test_wire_is_json_clean(self, vfuzz_result):
        text = dumps_wire(vfuzz_to_wire(vfuzz_result))
        assert vfuzz_from_wire(loads_wire(text)) == vfuzz_result

    def test_wire_version_guard(self, vfuzz_result):
        stale = vfuzz_to_wire(vfuzz_result)
        del stale["wire_version"]
        with pytest.raises(WireError):
            vfuzz_from_wire(stale)
