"""Synthetic violations covering every rule family (golden-file fixture).

This module is linted by tests/test_lint_cli.py with ``zcover lint
--format json``; the output is compared byte-for-byte (as parsed JSON)
against tests/data/lint_golden.json.  Keep it stable: any edit here must
regenerate the golden file.
"""

import time
from dataclasses import dataclass
from typing import Any, List

FIELD_OPERATORS = {"CMDCL": None, "BOGUS": None}


@dataclass
class WirePacket:
    payload: List[int]
    raw: Any


def dispatch(registry, payload):
    registry.get(payload.cmdcl)
    if payload.cmdcl == 0xEE and payload.cmd == 0x01:
        return time.time()
    return [x for x in {3, 1, 2}]


def suppressed():
    return time.time()  # lint: allow[D101] -- fixture for justified suppression


def unjustified():
    return time.time()  # lint: allow[D101]
