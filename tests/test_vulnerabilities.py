"""Tests for the Table III zero-day models and the MAC one-day quirks."""

import pytest

from repro.simulator.vulnerabilities import (
    CMDCL_0X01_BUG_IDS,
    DEVICE_MAC_QUIRKS,
    MAC_QUIRK_CATALOG,
    RootCause,
    TriggerContext,
    ZERO_DAYS,
    match_zero_days,
    zero_day_by_id,
)
from repro.zwave.checksum import cs8
from repro.zwave.frame import ZWaveFrame

SUPPORTED = tuple(range(0x20, 0xA0))  # superset for predicate checks


def ctx(cmdcl, cmd, params=b"", encapsulated=False, supported=SUPPORTED):
    return TriggerContext(
        cmdcl=cmdcl,
        cmd=cmd,
        params=bytes(params),
        encapsulated=encapsulated,
        supported_cmdcls=supported,
    )


class TestTableIIIDatabase:
    def test_fifteen_zero_days(self):
        assert len(ZERO_DAYS) == 15
        assert sorted(b.bug_id for b in ZERO_DAYS) == list(range(1, 16))

    def test_twelve_cves_assigned(self):
        assert sum(1 for b in ZERO_DAYS if b.cve) == 12

    def test_seven_bugs_on_cmdcl_0x01(self):
        assert len(CMDCL_0X01_BUG_IDS) == 7
        assert set(CMDCL_0X01_BUG_IDS) == {1, 2, 3, 4, 5, 12, 14}

    def test_root_causes_match_paper(self):
        implementation = {b.bug_id for b in ZERO_DAYS if b.root_cause is RootCause.IMPLEMENTATION}
        assert implementation == {6, 13}

    def test_durations_match_paper(self):
        expected = {7: 68.0, 8: 67.0, 9: 63.0, 10: 4.0, 11: 62.0, 14: 240.0, 15: 59.0}
        for bug_id, duration in expected.items():
            assert zero_day_by_id(bug_id).duration_s == duration

    def test_infinite_bugs_have_no_duration(self):
        for bug_id in (1, 2, 3, 4, 5, 6, 12, 13):
            assert zero_day_by_id(bug_id).duration_s is None
            assert zero_day_by_id(bug_id).duration_label == "Infinite"

    def test_duration_labels(self):
        assert zero_day_by_id(7).duration_label == "68 sec"
        assert zero_day_by_id(14).duration_label == "4 min"

    def test_unknown_bug_id_raises(self):
        with pytest.raises(KeyError):
            zero_day_by_id(99)

    def test_signatures_unique(self):
        signatures = [b.signature for b in ZERO_DAYS]
        assert len(set(signatures)) == len(signatures)


class TestMemoryTamperPredicates:
    """Bugs #01-#04 and #12: the NVM-write operation selector."""

    @pytest.mark.parametrize(
        "operation,bug_id",
        [(0x00, 12), (0x01, 1), (0x02, 2), (0x03, 3), (0x04, 4)],
    )
    def test_operation_selects_bug(self, operation, bug_id):
        matched = match_zero_days(ctx(0x01, 0x0D, bytes([0x02, operation])))
        assert [b.bug_id for b in matched] == [bug_id]

    def test_requires_operation_parameter(self):
        assert match_zero_days(ctx(0x01, 0x0D, b"\x02")) == []
        assert match_zero_days(ctx(0x01, 0x0D, b"")) == []

    def test_unknown_operation_is_safe(self):
        assert match_zero_days(ctx(0x01, 0x0D, b"\x02\x09")) == []


class TestHostBugPredicates:
    def test_bug5_any_app_update(self):
        assert [b.bug_id for b in match_zero_days(ctx(0x01, 0x02))] == [5]
        assert [b.bug_id for b in match_zero_days(ctx(0x01, 0x02, b"\x01\x02"))] == [5]

    def test_bug6_truncated_nonce_get(self):
        assert [b.bug_id for b in match_zero_days(ctx(0x9F, 0x01))] == [6]

    def test_bug6_valid_nonce_get_is_safe(self):
        assert match_zero_days(ctx(0x9F, 0x01, b"\x07")) == []

    def test_bug13_truncated_test_node_set(self):
        assert [b.bug_id for b in match_zero_days(ctx(0x73, 0x04, b"\x01\x05"))] == [13]

    def test_bug13_complete_payload_is_safe(self):
        assert match_zero_days(ctx(0x73, 0x04, b"\x01\x05\x00\x0a")) == []


class TestHangPredicates:
    def test_bug7_bare_commands(self):
        assert [b.bug_id for b in match_zero_days(ctx(0x5A, 0x01))] == [7]
        assert [b.bug_id for b in match_zero_days(ctx(0x5A, 0x42))] == [7]

    def test_bug7_needs_empty_params(self):
        assert match_zero_days(ctx(0x5A, 0x01, b"\x00")) == []

    def test_bug8_bug11_parity_split(self):
        assert [b.bug_id for b in match_zero_days(ctx(0x59, 0x03, b"\x00\x01"))] == [8]
        assert [b.bug_id for b in match_zero_days(ctx(0x59, 0x05, b"\x00\x01"))] == [11]
        assert [b.bug_id for b in match_zero_days(ctx(0x59, 0x09, b"\x00\x01"))] == [8]
        assert [b.bug_id for b in match_zero_days(ctx(0x59, 0x0A, b"\x00\x01"))] == [11]

    def test_bug8_bug11_need_body(self):
        assert match_zero_days(ctx(0x59, 0x03, b"\x00")) == []
        assert match_zero_days(ctx(0x59, 0x05)) == []

    def test_bug9_bug15_split(self):
        assert [b.bug_id for b in match_zero_days(ctx(0x7A, 0x01))] == [9]
        assert [b.bug_id for b in match_zero_days(ctx(0x7A, 0x03, b"\x00\x01"))] == [15]

    def test_bug9_needs_empty_body(self):
        assert match_zero_days(ctx(0x7A, 0x01, b"\x00")) == []

    def test_bug10_unsupported_class_lookup(self):
        matched = match_zero_days(ctx(0x86, 0x13, b"\x01", supported=(0x20, 0x86)))
        assert [b.bug_id for b in matched] == [10]

    def test_bug10_supported_class_is_safe(self):
        assert match_zero_days(ctx(0x86, 0x13, b"\x20", supported=(0x20, 0x86))) == []

    def test_bug14_oversized_node_mask(self):
        assert [b.bug_id for b in match_zero_days(ctx(0x01, 0x04, b"\xff"))] == [14]
        assert [b.bug_id for b in match_zero_days(ctx(0x01, 0x04, b"\x1e"))] == [14]

    def test_bug14_legal_mask_is_safe(self):
        assert match_zero_days(ctx(0x01, 0x04, b"\x1d")) == []


class TestPredicateDisjointness:
    def test_no_context_triggers_two_bugs(self):
        """Every trigger context maps to at most one zero-day."""
        probes = []
        for cmdcl in (0x01, 0x59, 0x5A, 0x73, 0x7A, 0x86, 0x9F):
            for cmd in range(0x00, 0x40):
                for params in (b"", b"\x00", b"\x00\x00", b"\xff\x04\x00"):
                    probes.append(ctx(cmdcl, cmd, params))
        for probe in probes:
            assert len(match_zero_days(probe)) <= 1

    def test_cmd_none_never_triggers(self):
        for bug in ZERO_DAYS:
            context = TriggerContext(bug.cmdcl, None, b"", False, SUPPORTED)
            assert not bug.triggered_by(context)


class TestMacQuirks:
    def well_formed(self):
        return ZWaveFrame(
            home_id=0xE7DE3F3D, src=0x0F, dst=1, payload=b"\x20\x02", sequence=15
        ).encode()

    def test_catalog_quirks_have_unique_ids(self):
        assert len(MAC_QUIRK_CATALOG) == len({q.quirk_id for q in MAC_QUIRK_CATALOG.values()})

    def test_device_assignment_counts_match_table5(self):
        counts = {d: len(q) for d, q in DEVICE_MAC_QUIRKS.items()}
        assert counts == {"D1": 1, "D2": 3, "D3": 0, "D4": 4, "D5": 0, "D6": 0, "D7": 0}

    def test_assigned_quirks_exist_in_catalog(self):
        for quirks in DEVICE_MAC_QUIRKS.values():
            assert all(q in MAC_QUIRK_CATALOG for q in quirks)

    def test_well_formed_frames_never_trip_any_quirk(self):
        raw = self.well_formed()
        for quirk in MAC_QUIRK_CATALOG.values():
            assert not quirk.predicate(raw), quirk.quirk_id

    def test_zcover_style_frames_never_trip_quirks(self):
        """ZCover mutates only the APL — no header shape can fire a quirk."""
        for seq in range(16):
            for payload in (b"\x00", b"\x5a\x01", b"\x01\x0d\x02\x03", b"\x86\x13\x00"):
                raw = ZWaveFrame(
                    home_id=0xCB51722D, src=0x0F, dst=1, payload=payload, sequence=seq
                ).encode()
                for quirk in MAC_QUIRK_CATALOG.values():
                    assert not quirk.predicate(raw), (quirk.quirk_id, seq, payload)

    def _with(self, mutate):
        raw = bytearray(self.well_formed())
        mutate(raw)
        raw[-1] = cs8(raw[:-1])
        return bytes(raw)

    def test_len_overrun_fires(self):
        raw = self._with(lambda r: r.__setitem__(7, 0xFF))
        assert MAC_QUIRK_CATALOG["LEN-OVERRUN"].predicate(raw)

    def test_len_underrun_fires(self):
        raw = self._with(lambda r: r.__setitem__(7, 0x05))
        assert MAC_QUIRK_CATALOG["LEN-UNDERRUN"].predicate(raw)

    def test_src_eq_dst_fires(self):
        raw = self._with(lambda r: r.__setitem__(4, r[8]))
        assert MAC_QUIRK_CATALOG["SRC-EQ-DST"].predicate(raw)

    def test_reserved_type_fires(self):
        raw = self._with(lambda r: r.__setitem__(5, (r[5] & 0xF0) | 0x05))
        assert MAC_QUIRK_CATALOG["RESERVED-TYPE"].predicate(raw)

    def test_routed_empty_fires(self):
        def mutate(r):
            r[5] |= 0x80
            r[7] = 10
        assert MAC_QUIRK_CATALOG["ROUTED-EMPTY"].predicate(self._with(mutate))

    def test_broadcast_ack_fires(self):
        raw = self._with(lambda r: r.__setitem__(8, 0xFF))
        assert MAC_QUIRK_CATALOG["BROADCAST-ACK"].predicate(raw)

    def test_null_dst_fires(self):
        raw = self._with(lambda r: r.__setitem__(8, 0x00))
        assert MAC_QUIRK_CATALOG["NULL-DST"].predicate(raw)

    def test_zero_home_fires(self):
        raw = self._with(lambda r: r.__setitem__(slice(0, 4), b"\x00\x00\x00\x00"))
        assert MAC_QUIRK_CATALOG["ZERO-HOME"].predicate(raw)
