"""Oracle ground truth for the planted session-level vulnerabilities.

The false-positive/false-negative contract the session fuzzer's findings
rest on (the paper's Table VI analogue at sequence level):

* **reachability** — every planted predicate fires under its directed
  mutation of the happy path (``repro.core.session.DIRECTED_ATTACKS``);
* **soundness** — no predicate fires on any unmutated happy-path trace,
  in its own flow or any other.

Plus structural checks that keep the oracle honest: each vuln is scoped
to a modelled flow, each directed attack fires the bug it names, and the
happy path of every flow walks the graph to its terminal state.
"""

import pytest

from repro.core.session import (
    DIRECTED_ATTACKS,
    FLOW_GRAPHS,
    FLOWS,
    apply_ops,
    directed_attack,
    evaluate_trace,
    happy_path,
    planted_vuln_ids,
)
from repro.simulator.vulnerabilities import (
    SESSION_VULNS,
    match_session_vulns,
    session_vuln_by_id,
    session_vulns_for_flow,
)


class TestOracleStructure:
    def test_every_vuln_belongs_to_a_modelled_flow(self):
        for vuln in SESSION_VULNS:
            assert vuln.flow in FLOWS, vuln.vuln_id

    def test_every_vuln_has_a_directed_attack(self):
        assert set(DIRECTED_ATTACKS) == {v.vuln_id for v in SESSION_VULNS}

    def test_vuln_ids_are_unique_and_ordered(self):
        ids = [v.vuln_id for v in SESSION_VULNS]
        assert len(set(ids)) == len(ids)
        assert ids == sorted(ids)

    def test_at_least_ten_planted_bugs(self):
        assert len(SESSION_VULNS) >= 10

    def test_lookup_helpers(self):
        assert session_vuln_by_id("SV01").flow == "s0"
        with pytest.raises(KeyError):
            session_vuln_by_id("SV99")
        for flow in FLOWS:
            assert all(v.flow == flow for v in session_vulns_for_flow(flow))


class TestHappyPathsAreClean:
    @pytest.mark.parametrize("flow", FLOWS)
    def test_happy_path_reaches_terminal_state(self, flow):
        evaluation = evaluate_trace(flow, happy_path(flow))
        assert evaluation.completed
        assert evaluation.final_state == FLOW_GRAPHS[flow].terminal
        # Every frame is on-path: no "!step" or "?" marks.
        assert all(not mark.startswith(("!", "?")) for _, mark in evaluation.transitions)

    @pytest.mark.parametrize("flow", FLOWS)
    def test_no_planted_bug_fires_on_any_happy_path(self, flow):
        """Soundness, cross-flow: flow X's clean trace is clean under every
        flow's predicate set, not just its own."""
        evaluation = evaluate_trace(flow, happy_path(flow))
        assert evaluation.findings == ()
        for other in FLOWS:
            assert match_session_vulns(other, evaluation.frames) == []


class TestDirectedReachability:
    @pytest.mark.parametrize("vuln", SESSION_VULNS, ids=lambda v: v.vuln_id)
    def test_directed_attack_fires_its_bug(self, vuln):
        events = apply_ops(vuln.flow, directed_attack(vuln.vuln_id))
        evaluation = evaluate_trace(vuln.flow, events)
        fired = {v.vuln_id for v, _index in evaluation.findings}
        assert vuln.vuln_id in fired, (
            f"{vuln.vuln_id} not reached by its directed attack "
            f"(fired: {sorted(fired)})"
        )

    @pytest.mark.parametrize("vuln", SESSION_VULNS, ids=lambda v: v.vuln_id)
    def test_firing_index_points_at_the_lenient_acceptance(self, vuln):
        """The reported index is a real frame of the mutated sequence."""
        events = apply_ops(vuln.flow, directed_attack(vuln.vuln_id))
        evaluation = evaluate_trace(vuln.flow, events)
        for fired_vuln, index in evaluation.findings:
            if fired_vuln.vuln_id == vuln.vuln_id:
                assert 0 <= index < len(events)
                return
        pytest.fail(f"{vuln.vuln_id} missing from findings")

    def test_unknown_attack_rejected(self):
        from repro.errors import CampaignError

        with pytest.raises(CampaignError):
            directed_attack("SV99")


class TestPlantedCoverageOfIssueExamples:
    """The four bug shapes ISSUE 8 names explicitly all exist."""

    def test_s0_scheme_downgrade(self):
        assert session_vuln_by_id("SV01").flow == "s0"

    def test_s2_nonce_reuse(self):
        assert session_vuln_by_id("SV06").flow == "s2"

    def test_ota_resume_without_reauth(self):
        assert session_vuln_by_id("SV11").flow == "ota"

    def test_inclusion_stale_nif(self):
        assert session_vuln_by_id("SV07").flow == "inclusion"

    def test_planted_vuln_ids_helper_scopes_by_flow(self):
        assert planted_vuln_ids(("s0",)) == ("SV01", "SV02", "SV03")
        assert len(planted_vuln_ids()) == len(SESSION_VULNS)
