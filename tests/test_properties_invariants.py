"""Property-based invariants across the stack.

These tests throw arbitrary inputs at the parsers, the devices and the
framework components and assert structural invariants: codecs never crash
on lenient input, the mutator respects its position contract, and the
receive paths of every simulated component are total functions.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.mutation import PositionSensitiveMutator, RandomMutator
from repro.errors import FrameError, RadioError
from repro.radio.signal import decode_phy
from repro.simulator.testbed import build_sut
from repro.zwave.application import ApplicationPayload
from repro.zwave.frame import ZWaveFrame
from repro.zwave.registry import load_full_registry

REGISTRY = load_full_registry()


class TestParserTotality:
    """Parsers must reject, never crash."""

    @given(st.binary(min_size=10, max_size=64))
    @settings(max_examples=200)
    def test_lenient_frame_decode_never_crashes(self, raw):
        frame = ZWaveFrame.decode(raw, verify=False)
        assert 0 <= frame.src <= 255

    @given(st.binary(max_size=80))
    @settings(max_examples=200)
    def test_strict_frame_decode_raises_only_frame_errors(self, raw):
        try:
            ZWaveFrame.decode(raw, verify=True)
        except FrameError:
            pass

    @given(st.binary(min_size=1, max_size=54))
    @settings(max_examples=200)
    def test_apl_decode_total(self, raw):
        payload = ApplicationPayload.decode(raw)
        assert payload.encode() == raw or payload.cmd is None

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=8, max_size=400))
    @settings(max_examples=100)
    def test_phy_decode_raises_only_radio_errors(self, bits):
        try:
            decode_phy(bits, 100.0)
        except RadioError:
            pass


class TestMutatorContract:
    """Position-sensitive mutation never leaves its lane."""

    @given(
        cmdcl=st.sampled_from([0x01, 0x20, 0x34, 0x59, 0x5A, 0x73, 0x7A, 0x86, 0x9F]),
        count=st.integers(min_value=1, max_value=150),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_stream_stays_on_its_class(self, cmdcl, count, seed):
        import itertools

        mutator = PositionSensitiveMutator(REGISTRY, random.Random(seed))
        for case in itertools.islice(mutator.generate(cmdcl), count):
            assert case.payload.cmdcl == cmdcl
            assert len(case.payload) <= 54  # APL maximum

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_random_mutator_payloads_encodable(self, seed):
        import itertools

        for case in itertools.islice(RandomMutator(random.Random(seed)).generate(), 100):
            raw = case.encode()
            assert 2 <= len(raw) <= 6


class TestDeviceTotality:
    """Devices survive arbitrary bytes on the air (failure injection)."""

    @given(payloads=st.lists(st.binary(min_size=1, max_size=40), min_size=1, max_size=10))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_controller_survives_garbage_frames(self, payloads):
        sut = build_sut("D1", seed=99, traffic=False)
        for payload in payloads:
            frame = ZWaveFrame(
                home_id=sut.profile.home_id, src=0x0F, dst=1, payload=payload
            )
            sut.dongle.inject(frame)
            sut.clock.advance(0.05)
        # The controller may be hung or tampered but never corrupted
        # structurally: its table still snapshots and its clock advances.
        sut.controller.nvm.snapshot()
        sut.clock.advance(1.0)

    @given(raw=st.binary(min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_controller_survives_raw_noise(self, raw):
        sut = build_sut("D2", seed=98, traffic=False)  # D2 has MAC quirks
        sut.dongle.inject_raw(raw)
        sut.clock.advance(0.05)

    @given(
        cmdcl=st.integers(min_value=0, max_value=255),
        cmd=st.integers(min_value=0, max_value=255),
        params=st.binary(max_size=30),
    )
    @settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_s2_messaging_handle_total(self, cmdcl, cmd, params):
        sut = build_sut("D1", seed=97, traffic=False)
        payload = ApplicationPayload(cmdcl, cmd, params)
        consumed = sut.controller.s2_messaging.handle(0x0F, payload)
        assert isinstance(consumed, bool)


class TestIdsTotality:
    @given(
        src=st.integers(min_value=0, max_value=255),
        dst=st.integers(min_value=0, max_value=255),
        payload=st.binary(max_size=40),
    )
    @settings(max_examples=100, deadline=None)
    def test_inspect_total(self, src, dst, payload):
        from repro.analysis.ids import ZWaveIDS

        ids = ZWaveIDS(0xE7DE3F3D)
        ids.train(
            [(0.0, ZWaveFrame(home_id=0xE7DE3F3D, src=2, dst=1, payload=b"\x20\x02"))]
        )
        frame = ZWaveFrame(home_id=0xE7DE3F3D, src=src, dst=dst, payload=payload)
        alerts = ids.inspect(1.0, frame)
        assert isinstance(alerts, list)
