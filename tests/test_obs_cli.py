"""Tests for the export formats and the obs-facing CLI surface.

Includes the acceptance criterion: ``zcover trials --workers 2
--metrics-out`` writes the same bytes as the serial run.
"""

import json

import pytest

from repro.cli import main
from repro.obs.export import (
    SCHEMA,
    SCHEMA_VERSION,
    ObsExportError,
    document_to_snapshot,
    dumps_document,
    load_document,
    render_prometheus,
    render_text,
    snapshot_to_document,
)
from repro.obs.metrics import MetricsCollector

OBS_ARGS = ["obs", "--device", "D1", "--hours", "0.1", "--seed", "0"]


def _sample_document():
    collector = MetricsCollector()
    collector.inc("fuzzer.frames_tx", 7)
    collector.gauge_max("campaign.duration_s", 360.0)
    collector.observe("fuzzer.payload_len", 3)
    collector.cover(0x25, 0x01)
    collector.cover(0x25, 0x02)
    collector.cover(0x86)
    collector.record_span("campaign.fuzz", 360_000_000)
    return snapshot_to_document(collector.snapshot(), meta={"kind": "test"})


class TestDocument:
    def test_envelope(self):
        doc = _sample_document()
        assert doc["schema"] == SCHEMA
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["meta"] == {"kind": "test"}

    def test_roundtrip(self):
        doc = _sample_document()
        snap = document_to_snapshot(doc)
        assert snapshot_to_document(snap, meta={"kind": "test"}) == doc

    def test_rejects_foreign_documents(self):
        with pytest.raises(ObsExportError):
            document_to_snapshot({"schema": "other", "schema_version": 1})
        doc = _sample_document()
        doc["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ObsExportError):
            document_to_snapshot(doc)

    def test_dumps_is_canonical(self):
        text = dumps_document(_sample_document())
        assert text.endswith("\n")
        assert text == dumps_document(_sample_document())
        keys = list(json.loads(text))
        assert keys == sorted(keys)

    def test_file_roundtrip(self, tmp_path):
        from repro.obs.export import write_document

        path = tmp_path / "m.json"
        doc = _sample_document()
        write_document(doc, str(path))
        assert load_document(str(path)) == doc


class TestRenderers:
    def test_text_table(self):
        text = render_text(_sample_document())
        assert "fuzzer.frames_tx" in text
        assert "25" in text  # the coverage class
        assert "campaign.fuzz" in text

    def test_prometheus_format(self):
        prom = render_prometheus(_sample_document())
        assert 'zcover_counter_total{name="fuzzer.frames_tx"} 7' in prom
        assert 'zcover_coverage_total{cmdcl="25",cmd="01"} 1' in prom
        assert 'zcover_coverage_total{cmdcl="86",cmd="none"} 1' in prom
        assert "zcover_span_count" in prom
        assert "zcover_span_sim_seconds" in prom
        # cumulative histogram: +Inf bucket equals the count
        assert 'le="+Inf"' in prom


class TestObsCommand:
    def test_text_smoke(self, capsys):
        assert main(OBS_ARGS) == 0
        out = capsys.readouterr().out
        assert "fuzzer.frames_tx" in out

    def test_json_then_in_roundtrip(self, capsys, tmp_path):
        path = tmp_path / "doc.json"
        assert main(OBS_ARGS + ["--format", "json", "--out", str(path)]) == 0
        capsys.readouterr()
        doc = load_document(str(path))
        assert doc["meta"]["device"] == "D1"
        assert main(["obs", "--in", str(path), "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "zcover_counter_total" in out

    def test_trace_export(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(OBS_ARGS + ["--trace-out", str(trace)]) == 0
        capsys.readouterr()
        lines = trace.read_text().splitlines()
        assert lines
        names = {json.loads(line)["name"] for line in lines}
        assert "campaign.fuzz" in names


class TestMetricsOutDeterminism:
    """Acceptance: serial and --workers 2 metrics files are byte-identical."""

    def test_trials_metrics_out_worker_invariant(self, capsys, tmp_path):
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        base = ["trials", "--device", "D1", "--trials", "2", "--hours", "0.1"]
        assert main(base + ["--workers", "1", "--metrics-out", str(serial)]) == 0
        assert main(base + ["--workers", "2", "--metrics-out", str(parallel)]) == 0
        capsys.readouterr()
        assert serial.read_bytes() == parallel.read_bytes()
        doc = load_document(str(serial))
        assert doc["meta"]["kind"] == "trials"
        assert doc["counters"]["parallel.units"] == 2

    def test_ablation_metrics_out(self, capsys, tmp_path):
        path = tmp_path / "ablation.json"
        args = [
            "ablation", "--device", "D1", "--hours", "0.1",
            "--metrics-out", str(path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        doc = load_document(str(path))
        assert doc["meta"]["kind"] == "ablation"
        assert doc["counters"]["fuzzer.frames_tx"] > 0
