"""Tests for the ZMAD-style intrusion detection extension."""

import pytest

from repro.analysis.ids import AlertKind, ZWaveIDS
from repro.zwave.frame import ZWaveFrame

HOME = 0xE7DE3F3D


def frame(src=2, dst=1, payload=b"\x62\x03\xff\x00", home=HOME, **kw):
    return ZWaveFrame(home_id=home, src=src, dst=dst, payload=payload, **kw)


def trained_ids():
    ids = ZWaveIDS(HOME)
    benign = []
    t = 0.0
    for _ in range(20):
        benign.append((t, frame(src=1, dst=2, payload=b"\x20\x02")))  # polls
        benign.append((t + 1.0, frame(src=2, dst=1, payload=b"\x62\x03\xff\x00")))
        benign.append((t + 2.0, frame(src=3, dst=1, payload=b"\x25\x03\x00")))
        t += 30.0
    ids.train(benign)
    return ids


class TestTraining:
    def test_model_learns_senders_and_classes(self):
        ids = trained_ids()
        assert ids.trained
        assert ids.model.known_senders == {1, 2, 3}
        assert ids.model.known_cmdcls == {0x20, 0x62, 0x25}

    def test_model_learns_length_bounds(self):
        ids = trained_ids()
        assert ids.model.length_bounds[0x62] == (4, 4)

    def test_model_learns_peak_rate(self):
        ids = trained_ids()
        assert ids.model.max_rate_per_minute >= 3

    def test_foreign_frames_ignored_in_training(self):
        ids = ZWaveIDS(HOME)
        ids.train([(0.0, frame(home=0x12345678))])
        assert ids.model.known_senders == set()

    def test_inspect_before_training_raises(self):
        ids = ZWaveIDS(HOME)
        with pytest.raises(RuntimeError):
            ids.inspect(0.0, frame())


class TestDetection:
    def test_benign_traffic_is_silent(self):
        ids = trained_ids()
        alerts = ids.inspect(700.0, frame(src=2, payload=b"\x62\x03\x00\x00"))
        assert alerts == []

    def test_unknown_sender_flagged(self):
        ids = trained_ids()
        alerts = ids.inspect(700.0, frame(src=0x0F, payload=b"\x20\x02"))
        assert AlertKind.UNKNOWN_SENDER in {a.kind for a in alerts}

    def test_foreign_network_flagged(self):
        ids = trained_ids()
        alerts = ids.inspect(700.0, frame(home=0xDEADBEEF))
        assert AlertKind.FOREIGN_NETWORK in {a.kind for a in alerts}

    def test_unknown_cmdcl_flagged(self):
        # The proprietary CMDCL 0x01 attack payloads of Table III.
        ids = trained_ids()
        alerts = ids.inspect(700.0, frame(src=2, payload=b"\x01\x0d\x02\x03"))
        assert AlertKind.UNKNOWN_CMDCL in {a.kind for a in alerts}

    def test_unknown_cmd_flagged(self):
        ids = trained_ids()
        alerts = ids.inspect(700.0, frame(src=2, payload=b"\x62\x42\x00\x00"))
        assert AlertKind.UNKNOWN_CMD in {a.kind for a in alerts}

    def test_length_anomaly_flagged(self):
        ids = trained_ids()
        alerts = ids.inspect(700.0, frame(src=2, payload=b"\x62\x03"))
        assert AlertKind.LENGTH_ANOMALY in {a.kind for a in alerts}

    def test_rate_anomaly_flagged(self):
        ids = trained_ids()
        raised = []
        for i in range(40):
            raised += ids.inspect(700.0 + i * 0.5, frame(src=2, payload=b"\x62\x03\xff\x00"))
        assert AlertKind.RATE_ANOMALY in {a.kind for a in raised}

    def test_every_table3_payload_raises_an_alert(self):
        """The remediation claim: the IDS catches all fifteen attacks."""
        ids = trained_ids()
        attack_payloads = [
            b"\x01\x0d\x02\x01", b"\x01\x0d\xc8\x02", b"\x01\x0d\x02\x03",
            b"\x01\x0d\x01\x04", b"\x01\x02", b"\x9f\x01", b"\x5a\x01",
            b"\x59\x03\x00\x01", b"\x7a\x01", b"\x86\x13\x00",
            b"\x59\x05\x00\x01", b"\x01\x0d\x02\x00", b"\x73\x04\x01\x05",
            b"\x01\x04\xff", b"\x7a\x03\x00\x01",
        ]
        for i, payload in enumerate(attack_payloads):
            alerts = ids.inspect(800.0 + i, frame(src=0x0F, payload=payload))
            assert alerts, payload.hex()

    def test_ack_frames_only_checked_for_network(self):
        ids = trained_ids()
        ack = frame(payload=b"").ack()
        assert ids.inspect(700.0, ack) == []

    def test_sequence_anomaly_on_known_fields(self):
        """The Markov layer: every field trained, the *order* is not."""
        ids = trained_ids()
        # Benign training never showed node 2 sending a switch report
        # right after a lock report (0x62 -> 0x25).
        ids.inspect(700.0, frame(src=2, payload=b"\x62\x03\xff\x00"))
        alerts = ids.inspect(700.5, frame(src=2, payload=b"\x25\x03\x00"))
        assert AlertKind.SEQUENCE_ANOMALY in {a.kind for a in alerts}

    def test_trained_transition_is_silent(self):
        ids = trained_ids()
        # Consecutive lock reports occur in training (period 30 s).
        ids.inspect(700.0, frame(src=2, payload=b"\x62\x03\xff\x00"))
        alerts = ids.inspect(730.0, frame(src=2, payload=b"\x62\x03\x00\x00"))
        assert AlertKind.SEQUENCE_ANOMALY not in {a.kind for a in alerts}

    def test_model_learns_transitions(self):
        ids = trained_ids()
        assert (2, 0x62, 0x62) in ids.model.transitions

    def test_alert_history_accumulates(self):
        ids = trained_ids()
        ids.inspect(700.0, frame(src=0x0F, payload=b"\x20\x02"))
        ids.inspect(701.0, frame(src=0x0F, payload=b"\x20\x02"))
        assert len(ids.alerts()) >= 2
