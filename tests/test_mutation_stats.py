"""Statistical regression suite for the position-sensitive mutator.

The perf pass caches the deterministic prefix of each CMDCL's case
stream and batches generation; these tests pin the *distribution* the
PSM emits over ~1k seeds so any rewrite that shifts the operator mix,
the seeded rng tail, or CMDCL prioritisation is caught even when no
single golden campaign happens to exercise the changed path.

Two layers:

- exact pinned tallies — the operator mix over the first N cases is a
  pure function of (cmdcl, N), identical for every seed, so it is
  asserted exactly (1000 seeds × pinned per-seed counts);
- chi-square gates — properties of the rng tail (command validity split,
  parameter-length spread) are compared against their *design*
  distributions with a p≈0.001 critical value, so the checks hold for
  any correct seeding but fail if the draw structure changes.
"""

import itertools
import random
from collections import Counter

import pytest

from repro.core.mutation import MutationOperator, PositionSensitiveMutator
from repro.zwave.registry import load_full_registry

SEEDS = range(1000)

#: Operator tallies for the first 64 cases of BASIC (0x20), summed over
#: 1000 seeds.  The stream's operator sequence is seed-independent (the
#: rng perturbs payload contents, never the operator schedule), so these
#: are exact — divisible by the seed count.
EXPECTED_BASIC_MIX = {
    MutationOperator.SEED: 1_000,
    MutationOperator.RAND_VALID: 3_000,
    MutationOperator.RAND_INVALID: 27_000,
    MutationOperator.INSERT: 6_000,
    MutationOperator.TRUNCATE: 2_000,
    MutationOperator.RANDOM: 25_000,
}

#: Same for an unknown class (0xEE): the deterministic bare/2-byte sweep
#: then the rng loop.
EXPECTED_UNKNOWN_MIX = {
    MutationOperator.SEED: 1_000,
    MutationOperator.RAND_INVALID: 62_000,
    MutationOperator.RANDOM: 33_000,
}

#: chi-square critical values at p≈0.001.
CHI2_CRIT_DF1 = 10.83
CHI2_CRIT_DF4 = 18.47


@pytest.fixture(scope="module")
def registry():
    return load_full_registry()


def _chi_square(observed, expected):
    return sum(
        (observed.get(k, 0) - expected[k]) ** 2 / expected[k] for k in expected
    )


def _first_cases(registry, cmdcl, count, seed):
    mutator = PositionSensitiveMutator(registry, random.Random(seed))
    return list(itertools.islice(mutator.generate(cmdcl), count))


class TestOperatorMix:
    def test_basic_mix_pinned_over_seeds(self, registry):
        tally = Counter()
        for seed in SEEDS:
            for case in _first_cases(registry, 0x20, 64, seed):
                tally[case.operator] += 1
        assert dict(tally) == EXPECTED_BASIC_MIX

    def test_unknown_class_mix_pinned_over_seeds(self, registry):
        tally = Counter()
        for seed in SEEDS:
            for case in _first_cases(registry, 0xEE, 96, seed):
                tally[case.operator] += 1
        assert dict(tally) == EXPECTED_UNKNOWN_MIX

    def test_mix_is_seed_independent(self, registry):
        """Any two seeds schedule identical operators, case for case."""
        ops_a = [c.operator for c in _first_cases(registry, 0x20, 64, 1)]
        ops_b = [c.operator for c in _first_cases(registry, 0x20, 64, 999)]
        assert ops_a == ops_b


class TestRngTail:
    """The seeded random tail keeps its design distribution."""

    @pytest.fixture(scope="class")
    def tail_cases(self, registry):
        cases = []
        for seed in SEEDS:
            cases.extend(
                c
                for c in _first_cases(registry, 0x20, 64, seed)
                if c.operator is MutationOperator.RANDOM
            )
        return cases

    def test_command_validity_split(self, registry, tail_cases):
        """~80% of tail commands are valid for the class (design prob 0.8)."""
        valid_cmds = set(registry.get(0x20).command_ids())
        observed = Counter(
            "valid" if c.payload.cmd in valid_cmds else "invalid"
            for c in tail_cases
        )
        total = len(tail_cases)
        expected = {"valid": total * 0.8, "invalid": total * 0.2}
        assert _chi_square(observed, expected) < CHI2_CRIT_DF1

    def test_param_length_spread(self, tail_cases):
        """Tail parameter lengths are uniform over 0..4 (randrange(0, 5))."""
        observed = Counter(len(c.payload.params) for c in tail_cases)
        total = len(tail_cases)
        expected = {length: total / 5 for length in range(5)}
        assert set(observed) <= set(expected)
        assert _chi_square(observed, expected) < CHI2_CRIT_DF4

    def test_tail_differs_between_seeds(self, registry):
        """The tail is seeded — different seeds, different payloads."""
        tail_a = [
            c.encode()
            for c in _first_cases(registry, 0x20, 64, 1)
            if c.operator is MutationOperator.RANDOM
        ]
        tail_b = [
            c.encode()
            for c in _first_cases(registry, 0x20, 64, 2)
            if c.operator is MutationOperator.RANDOM
        ]
        assert tail_a != tail_b

    def test_tail_reproducible_per_seed(self, registry):
        cases_a = [c.encode() for c in _first_cases(registry, 0x20, 64, 42)]
        cases_b = [c.encode() for c in _first_cases(registry, 0x20, 64, 42)]
        assert cases_a == cases_b


class TestPrioritisation:
    def test_order_invariant_under_shuffles(self, registry):
        """1000 seeded input shuffles map to one prioritised order."""
        ids = list(registry.class_ids())
        baseline = tuple(registry.prioritize(ids))
        orders = set()
        for seed in SEEDS:
            shuffled = ids[:]
            random.Random(seed).shuffle(shuffled)
            orders.add(tuple(registry.prioritize(shuffled)))
        assert orders == {baseline}

    def test_order_prefix_pinned(self, registry):
        """The densest classes lead, exactly as the pre-rewrite order."""
        order = registry.prioritize(list(registry.class_ids()))
        assert list(order[:6]) == [0x34, 0x01, 0x67, 0x63, 0x9F, 0x98]
