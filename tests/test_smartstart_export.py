"""Tests for SmartStart provisioning and campaign JSON export."""

import json
import random

import pytest

from repro.core.campaign import Mode, run_campaign
from repro.simulator.inclusion import (
    InclusionCeremony,
    JoiningDevice,
    SmartStartList,
)
from repro.simulator.testbed import build_sut
from repro.zwave.constants import Region, TransportMode
from repro.zwave.nif import BasicDeviceClass, GenericDeviceClass, NodeInfo


def fresh_device(name, seed):
    return JoiningDevice(
        name,
        NodeInfo(
            basic=BasicDeviceClass.SLAVE,
            generic=GenericDeviceClass.SENSOR_BINARY,
            listed_cmdcls=(0x20, 0x30, 0x86),
        ),
        rng=random.Random(seed),
    )


@pytest.fixture
def smartstart():
    sut = build_sut("D1", seed=50, traffic=False)
    sut.medium.attach("sensor", (4.0, 4.0), Region.US, lambda r: None)
    ceremony = InclusionCeremony(sut.controller, sut.medium, sut.clock, random.Random(51))
    return sut, SmartStartList(ceremony)


class TestSmartStart:
    def test_provisioned_device_joins_automatically(self, smartstart):
        sut, provisioning = smartstart
        device = fresh_device("porch sensor", 1)
        provisioning.provision(device.dsk_pin, "porch sensor QR")
        result = provisioning.announce(device, "sensor")
        assert result is not None
        assert device.included
        assert result.transport is TransportMode.S2
        assert result.granted_keys != 0

    def test_unknown_device_ignored(self, smartstart):
        sut, provisioning = smartstart
        rogue = fresh_device("rogue", 2)
        assert provisioning.announce(rogue, "sensor") is None
        assert not rogue.included
        assert provisioning.ignored_announcements == 1
        assert len(sut.controller.nvm) == 2  # only the original pairings

    def test_provisioning_entry_single_use(self, smartstart):
        sut, provisioning = smartstart
        device = fresh_device("sensor", 3)
        provisioning.provision(device.dsk_pin)
        assert provisioning.announce(device, "sensor") is not None
        assert provisioning.provisioned_count == 0
        clone = fresh_device("clone", 3)  # same RNG seed -> same DSK
        clone.rng = random.Random(3)
        assert provisioning.announce(clone, "sensor") is None

    def test_is_provisioned(self, smartstart):
        _, provisioning = smartstart
        provisioning.provision(12345)
        assert provisioning.is_provisioned(12345)
        assert not provisioning.is_provisioned(54321)


class TestCampaignExport:
    @pytest.fixture(scope="class")
    def result(self):
        return run_campaign("D1", Mode.FULL, duration=600.0, seed=0)

    def test_round_trips_through_json(self, result):
        blob = json.dumps(result.to_dict())
        data = json.loads(blob)
        assert data["device"] == "D1"
        assert data["mode"] == "FULL"

    def test_summary_fields(self, result):
        data = result.to_dict()
        assert data["packets_sent"] == result.fuzz.packets_sent
        assert data["unique_vulnerabilities"] == result.unique_vulnerabilities
        assert data["fingerprint"]["home_id"] == "E7DE3F3D"
        assert data["fingerprint"]["unknown_cmdcls"] == 28

    def test_findings_sorted_and_complete(self, result):
        findings = result.to_dict()["findings"]
        assert len(findings) == result.unique_vulnerabilities
        times = [f["first_detection_time"] for f in findings]
        assert times == sorted(times)
        first = findings[0]
        assert first["bug_id"] == 5
        assert first["cve"] == "CVE-2024-50921"
        assert first["cmdcl"] == 0x01
