"""Integration tests: campaigns, the ablation, and the VFuzz baseline."""

import pytest

from repro.errors import CampaignError, FuzzerError
from repro.core.baseline import VFuzzBaseline
from repro.core.campaign import (
    Mode,
    build_queue,
    run_campaign,
)
from repro.core.properties import ControllerProperties
from repro.simulator.testbed import LISTED_17, build_sut
from repro.zwave.registry import load_full_registry


class TestBuildQueue:
    def props(self):
        return ControllerProperties(
            home_id=1,
            controller_node_id=1,
            listed_cmdcls=LISTED_17,
            validated_unknown=(0x34, 0x67),
            proprietary=(0x01, 0x02),
        )

    def test_full_queue_includes_unknown(self):
        queue = build_queue(Mode.FULL, self.props(), load_full_registry())
        assert 0x01 in queue and 0x34 in queue

    def test_beta_queue_is_listed_only(self):
        queue = build_queue(Mode.BETA, self.props(), load_full_registry())
        assert set(queue) == set(LISTED_17)

    def test_gamma_has_no_queue(self):
        with pytest.raises(CampaignError):
            build_queue(Mode.GAMMA, self.props(), load_full_registry())


class TestShortCampaigns:
    """Cheap end-to-end runs (minutes of simulated time)."""

    def test_full_campaign_twenty_minutes(self):
        result = run_campaign("D1", Mode.FULL, duration=1200.0, seed=0)
        # The CMDCL-0x01 bugs land in the first few minutes (Figure 12).
        assert {1, 2, 3, 4, 5, 12, 14} <= set(result.matched_bug_ids)
        assert result.properties.unknown_count == 28
        assert result.fuzz.packets_sent > 1000

    def test_beta_never_finds_0x01_bugs(self):
        result = run_campaign("D1", Mode.BETA, duration=1200.0, seed=0)
        assert not set(result.matched_bug_ids) & {1, 2, 3, 4, 5, 12, 14}
        assert result.fuzz.cmdcls_used <= set(LISTED_17)

    def test_gamma_covers_whole_space(self):
        result = run_campaign("D1", Mode.GAMMA, duration=600.0, seed=0)
        assert result.fuzz.cmdcl_coverage > 200

    def test_unverified_campaign_skips_replay(self):
        result = run_campaign("D1", Mode.FULL, duration=300.0, seed=0, verify=False)
        assert result.unique == {}
        assert len(result.fuzz.bug_log) > 0

    def test_discovery_timeline_sorted(self):
        result = run_campaign("D1", Mode.FULL, duration=900.0, seed=0)
        times = [t for t, _, _ in result.discovery_timeline()]
        assert times == sorted(times)

    def test_deterministic_given_seed(self):
        one = run_campaign("D1", Mode.FULL, duration=400.0, seed=9, verify=False)
        two = run_campaign("D1", Mode.FULL, duration=400.0, seed=9, verify=False)
        assert one.fuzz.packets_sent == two.fuzz.packets_sent
        assert [r.payload_hex for r in one.fuzz.bug_log] == [
            r.payload_hex for r in two.fuzz.bug_log
        ]


class TestVFuzzBaseline:
    def test_seeds_from_sniffed_traffic(self):
        sut = build_sut("D1", seed=0)
        baseline = VFuzzBaseline(sut, seed=0)
        assert baseline.collect_seeds() > 0

    def test_quiet_network_raises(self):
        sut = build_sut("D1", seed=0, traffic=False)
        baseline = VFuzzBaseline(sut, seed=0)
        with pytest.raises(FuzzerError):
            baseline.run(60.0)

    def test_full_cmdcl_cmd_coverage(self):
        sut = build_sut("D3", seed=0)
        result = VFuzzBaseline(sut, seed=0).run(300.0)
        assert result.cmdcl_coverage == 256
        assert result.cmd_coverage > 250

    def test_most_packets_rejected(self):
        """Table V's mechanism: MAC mutation breaks frame validity."""
        sut = build_sut("D3", seed=0)
        result = VFuzzBaseline(sut, seed=0).run(600.0)
        assert result.accepted_estimate < result.packets_sent * 0.01

    def test_finds_d1_mac_quirk(self):
        sut = build_sut("D1", seed=0)
        result = VFuzzBaseline(sut, seed=0).run(600.0)
        assert result.quirks_found == ["LEN-OVERRUN"]
        assert result.unique_vulnerabilities == 1

    def test_clean_devices_yield_nothing(self):
        for device in ("D3", "D5"):
            sut = build_sut(device, seed=0)
            result = VFuzzBaseline(sut, seed=0).run(600.0)
            assert result.unique_vulnerabilities == 0

    def test_never_triggers_zcover_bugs_quickly(self):
        sut = build_sut("D1", seed=0)
        result = VFuzzBaseline(sut, seed=0).run(1800.0)
        assert result.zero_day_payloads == []
