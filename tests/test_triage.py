"""Tests for crash triage and payload minimisation."""


from repro.analysis.triage import (
    CrashTriage,
    PayloadMinimizer,
    render_triage_report,
)
from repro.core.buglog import BugLog, BugRecord
from repro.core.monitor import ObservedKind


class TestPayloadMinimizer:
    def test_strips_redundant_trailing_bytes(self):
        minimizer = PayloadMinimizer("D1", seed=0)
        # Bug 7 triggers on [0x5A, cmd] alone; garbage after the CMDCL/CMD
        # pair would change the shape, so feed a padded *hang* payload that
        # tolerates shrinking: bug 14 fires for any mask length > 29.
        bloated = bytes([0x01, 0x04, 0xFF, 0x12, 0x34, 0x56])
        minimal = minimizer.minimize(bloated)
        assert minimal == bytes([0x01, 0x04, 0xFF])

    def test_zeroes_irrelevant_parameters(self):
        minimizer = PayloadMinimizer("D1", seed=0)
        # Bug 8 needs cmd 0x03 and >= 2 params of any value.
        minimal = minimizer.minimize(bytes([0x59, 0x03, 0x7F, 0x7F]))
        assert minimal == bytes([0x59, 0x03, 0x00, 0x00])

    def test_preserves_discriminating_parameter(self):
        minimizer = PayloadMinimizer("D1", seed=0)
        # Bug 2's operation byte 0x02 must survive: zeroing it would turn
        # the finding into bug 12 (a different signature).
        minimal = minimizer.minimize(bytes([0x01, 0x0D, 0x02, 0x02, 0xAA]))
        assert minimal[:2] == bytes([0x01, 0x0D])
        assert minimal[3] == 0x02

    def test_non_triggering_payload_unchanged(self):
        minimizer = PayloadMinimizer("D1", seed=0)
        benign = bytes([0x20, 0x02])
        assert minimizer.minimize(benign) == benign

    def test_already_minimal_payload(self):
        minimizer = PayloadMinimizer("D1", seed=0)
        assert minimizer.minimize(bytes([0x5A, 0x01])) == bytes([0x5A, 0x01])


class TestCrashTriage:
    def make_log(self):
        log = BugLog()
        # Two duplicates of bug 7 via different commands, one bug 3.
        log.add(BugRecord.from_payload(10.0, 100, bytes([0x5A, 0x01]), ObservedKind.HANG))
        log.add(BugRecord.from_payload(11.0, 101, bytes([0x5A, 0x02]), ObservedKind.HANG))
        log.add(BugRecord.from_payload(12.0, 102, bytes([0x5A, 0x01]), ObservedKind.HANG))
        log.add(
            BugRecord.from_payload(
                20.0, 200, bytes([0x01, 0x0D, 0x02, 0x03]), ObservedKind.MEMORY_REMOVE
            )
        )
        return log

    def test_dedup_by_signature(self):
        triaged = CrashTriage("D1", seed=0, minimize=False).triage(self.make_log())
        assert len(triaged) == 2

    def test_occurrence_counting(self):
        triaged = CrashTriage("D1", seed=0, minimize=False).triage(self.make_log())
        hang = next(t for t in triaged if t.finding.kind is ObservedKind.HANG)
        assert hang.occurrences == 3

    def test_deterministic_sut_is_fully_stable(self):
        triaged = CrashTriage("D1", seed=0, minimize=False).triage(self.make_log())
        assert all(t.stable for t in triaged)

    def test_persistent_impact_ranks_first(self):
        triaged = CrashTriage("D1", seed=0, minimize=False).triage(self.make_log())
        assert triaged[0].finding.duration_s is None  # memory bug first

    def test_minimized_payloads_attached(self):
        triaged = CrashTriage("D1", seed=0, minimize=True).triage(self.make_log())
        memory = next(t for t in triaged if t.finding.kind is ObservedKind.MEMORY_REMOVE)
        assert memory.minimized_payload is not None
        assert memory.minimized_payload[0] == 0x01

    def test_report_rendering(self):
        triaged = CrashTriage("D1", seed=0).triage(self.make_log())
        report = render_triage_report(triaged)
        assert "CVE-2023-6533" in report  # bug 7
        assert "stable 100%" in report
