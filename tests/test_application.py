"""Tests for the application-layer payload model and validator."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import FrameError
from repro.zwave.application import (
    ApplicationPayload,
    POSITION_CMD,
    POSITION_CMDCL,
    POSITION_FIRST_PARAM,
    Validity,
    build_valid_payload,
    validate_payload,
)


class TestPayloadCodec:
    def test_encode_full(self):
        payload = ApplicationPayload(0x20, 0x01, b"\xff")
        assert payload.encode() == b"\x20\x01\xff"

    def test_encode_class_only(self):
        assert ApplicationPayload(0x5A).encode() == b"\x5a"

    def test_decode_full(self):
        payload = ApplicationPayload.decode(b"\x62\x01\xff\x00")
        assert (payload.cmdcl, payload.cmd, payload.params) == (0x62, 0x01, b"\xff\x00")

    def test_decode_class_only(self):
        payload = ApplicationPayload.decode(b"\x86")
        assert payload.cmd is None

    def test_decode_empty_raises(self):
        with pytest.raises(FrameError):
            ApplicationPayload.decode(b"")

    def test_len(self):
        assert len(ApplicationPayload(0x20)) == 1
        assert len(ApplicationPayload(0x20, 0x01)) == 2
        assert len(ApplicationPayload(0x20, 0x01, b"\x00\x01")) == 4

    def test_rejects_out_of_range(self):
        with pytest.raises(FrameError):
            ApplicationPayload(256)
        with pytest.raises(FrameError):
            ApplicationPayload(0x20, 300)

    def test_rejects_oversized(self):
        with pytest.raises(FrameError):
            ApplicationPayload(0x20, 0x01, b"\x00" * 64)

    @given(
        cmdcl=st.integers(min_value=0, max_value=255),
        cmd=st.one_of(st.none(), st.integers(min_value=0, max_value=255)),
        params=st.binary(max_size=30),
    )
    def test_roundtrip_property(self, cmdcl, cmd, params):
        if cmd is None:
            params = b""
        payload = ApplicationPayload(cmdcl, cmd, params)
        assert ApplicationPayload.decode(payload.encode()) == payload


class TestPositionalAccess:
    def test_field_at_positions(self):
        payload = ApplicationPayload(0x62, 0x01, b"\xff\x02")
        assert payload.field_at(POSITION_CMDCL) == 0x62
        assert payload.field_at(POSITION_CMD) == 0x01
        assert payload.field_at(POSITION_FIRST_PARAM) == 0xFF
        assert payload.field_at(POSITION_FIRST_PARAM + 1) == 0x02
        assert payload.field_at(POSITION_FIRST_PARAM + 2) is None

    def test_replace_cmdcl(self):
        payload = ApplicationPayload(0x20, 0x01, b"\xff")
        assert payload.replace_at(POSITION_CMDCL, 0x25).cmdcl == 0x25

    def test_replace_cmd(self):
        payload = ApplicationPayload(0x20, 0x01, b"\xff")
        assert payload.replace_at(POSITION_CMD, 0x06).cmd == 0x06

    def test_replace_param(self):
        payload = ApplicationPayload(0x20, 0x01, b"\xff")
        assert payload.replace_at(POSITION_FIRST_PARAM, 0x00).params == b"\x00"

    def test_replace_is_copy(self):
        payload = ApplicationPayload(0x20, 0x01, b"\xff")
        payload.replace_at(POSITION_FIRST_PARAM, 0x00)
        assert payload.params == b"\xff"

    def test_replace_missing_param_raises(self):
        with pytest.raises(FrameError):
            ApplicationPayload(0x20, 0x01).replace_at(POSITION_FIRST_PARAM, 0)

    def test_replace_bad_value_raises(self):
        with pytest.raises(FrameError):
            ApplicationPayload(0x20, 0x01, b"\xff").replace_at(0, 256)

    def test_append_param(self):
        payload = ApplicationPayload(0x20, 0x01, b"\xff").append_param(0x33)
        assert payload.params == b"\xff\x33"

    def test_append_without_cmd_raises(self):
        with pytest.raises(FrameError):
            ApplicationPayload(0x20).append_param(1)

    def test_truncate(self):
        payload = ApplicationPayload(0x62, 0x01, b"\x01\x02\x03")
        assert payload.truncate_params(1).params == b"\x01"
        assert payload.truncate_params(0).params == b""
        assert payload.truncate_params(9).params == b"\x01\x02\x03"

    def test_positions_enumeration(self):
        payload = ApplicationPayload(0x62, 0x01, b"\x01\x02")
        assert payload.positions == (0, 1, 2, 3)
        assert ApplicationPayload(0x62).positions == (0,)


class TestValidation:
    def test_valid_payload(self, full_registry):
        payload = ApplicationPayload(0x20, 0x01, b"\x42")  # BASIC_SET value
        result = validate_payload(payload, full_registry)
        assert result.validity is Validity.VALID

    def test_unknown_class_invalid(self, public_registry):
        payload = ApplicationPayload(0x01, 0x0D, b"\x02\x03")
        result = validate_payload(payload, public_registry)
        assert result.validity is Validity.INVALID

    def test_proprietary_valid_against_full_registry(self, full_registry):
        payload = ApplicationPayload(0x01, 0x05)
        result = validate_payload(payload, full_registry)
        assert result.validity is Validity.VALID

    def test_missing_command_semi_valid(self, full_registry):
        result = validate_payload(ApplicationPayload(0x20), full_registry)
        assert result.validity is Validity.SEMI_VALID

    def test_undefined_command_semi_valid(self, full_registry):
        result = validate_payload(ApplicationPayload(0x20, 0x99), full_registry)
        assert result.validity is Validity.SEMI_VALID
        assert "not defined" in result.reasons[0]

    def test_missing_parameter_semi_valid(self, full_registry):
        result = validate_payload(ApplicationPayload(0x20, 0x01), full_registry)
        assert result.validity is Validity.SEMI_VALID
        assert any("missing parameter" in r for r in result.reasons)

    def test_illegal_parameter_semi_valid(self, full_registry):
        # SWITCH_BINARY_SET only accepts 0x00 / 0xFF.
        result = validate_payload(ApplicationPayload(0x25, 0x01, b"\x55"), full_registry)
        assert result.validity is Validity.SEMI_VALID

    def test_trailing_bytes_semi_valid(self, full_registry):
        result = validate_payload(
            ApplicationPayload(0x20, 0x02, b"\x00\x00"), full_registry
        )
        assert result.validity is Validity.SEMI_VALID
        assert any("trailing" in r for r in result.reasons)


class TestBuildValidPayload:
    def test_defaults_use_first_legal_values(self, full_registry):
        payload = build_valid_payload(full_registry, 0x25, 0x01)
        assert payload.params == b"\x00"  # first legal enum value

    def test_explicit_params(self, full_registry):
        payload = build_valid_payload(full_registry, 0x20, 0x01, [0x42])
        assert payload.params == b"\x42"

    def test_built_payload_validates(self, full_registry):
        for cls in full_registry:
            for cmd in cls.commands:
                payload = build_valid_payload(full_registry, cls.id, cmd.id)
                result = validate_payload(payload, full_registry)
                assert result.validity is Validity.VALID, (cls.name, cmd.name)
