"""Tests for the oracles (liveness/memory/host) and the bug log."""

import pytest

from repro.core.buglog import BugLog, BugRecord
from repro.core.monitor import (
    LivenessMonitor,
    ObservedKind,
    SutObserver,
    classify_memory_changes,
)
from repro.simulator.memory import NodeRecord, NodeTable
from repro.simulator.testbed import LOCK_NODE_ID
from repro.zwave.frame import ZWaveFrame


def monitor_for(sut, timeout=0.5):
    return LivenessMonitor(
        sut.dongle, sut.clock, sut.profile.home_id, sut.controller.node_id, timeout
    )


def attack(sut, payload):
    frame = ZWaveFrame(
        home_id=sut.profile.home_id, src=0x0F, dst=1, payload=payload
    )
    sut.dongle.inject(frame)
    sut.clock.advance(0.05)


class TestLivenessMonitor:
    def test_ping_healthy_controller(self, quiet_sut):
        monitor = monitor_for(quiet_sut)
        assert monitor.ping()
        assert monitor.pings_sent == 1
        assert monitor.pings_lost == 0

    def test_ping_hung_controller(self, quiet_sut):
        attack(quiet_sut, bytes([0x5A, 0x01]))
        monitor = monitor_for(quiet_sut)
        assert not monitor.ping()
        assert monitor.pings_lost == 1

    def test_ping_powered_off_controller(self, quiet_sut):
        quiet_sut.controller.set_power(False)
        assert not monitor_for(quiet_sut).ping()

    def test_ping_until_responsive_measures_hang(self, quiet_sut):
        attack(quiet_sut, bytes([0x86, 0x13, 0x00]))  # bug 10: 4 s hang
        monitor = monitor_for(quiet_sut)
        recovery = monitor.ping_until_responsive(max_wait=30.0)
        assert recovery is not None
        assert 3.0 <= recovery <= 6.5

    def test_ping_until_responsive_gives_up(self, quiet_sut):
        quiet_sut.controller.set_power(False)
        monitor = monitor_for(quiet_sut)
        assert monitor.ping_until_responsive(max_wait=5.0) is None


class TestMemoryClassification:
    def rec(self, node_id=2, **kw):
        return NodeRecord(node_id=node_id, **kw)

    def diff(self, before, after):
        return NodeTable.diff(tuple(before), tuple(after))

    def test_empty_diff_is_none(self):
        assert classify_memory_changes([]) is None

    def test_insert(self):
        changes = self.diff([], [self.rec(10)])
        assert classify_memory_changes(changes) is ObservedKind.MEMORY_INSERT

    def test_remove(self):
        changes = self.diff([self.rec(2)], [])
        assert classify_memory_changes(changes) is ObservedKind.MEMORY_REMOVE

    def test_overwrite(self):
        changes = self.diff([self.rec(2)], [self.rec(10), self.rec(20)])
        assert classify_memory_changes(changes) is ObservedKind.MEMORY_OVERWRITE

    def test_modify(self):
        changes = self.diff([self.rec(2, basic=3)], [self.rec(2, basic=4)])
        assert classify_memory_changes(changes) is ObservedKind.MEMORY_MODIFY

    def test_wakeup_clear(self):
        changes = self.diff(
            [self.rec(2, wakeup_interval=3600)], [self.rec(2, wakeup_interval=None)]
        )
        assert classify_memory_changes(changes) is ObservedKind.MEMORY_WAKEUP_CLEAR

    def test_wakeup_plus_other_field_is_modify(self):
        changes = self.diff(
            [self.rec(2, wakeup_interval=3600, basic=3)],
            [self.rec(2, wakeup_interval=None, basic=4)],
        )
        assert classify_memory_changes(changes) is ObservedKind.MEMORY_MODIFY


class TestSutObserver:
    def test_detects_memory_tampering(self, quiet_sut):
        observer = SutObserver(quiet_sut)
        attack(quiet_sut, bytes([0x01, 0x0D, LOCK_NODE_ID, 0x03]))
        kind, changes = observer.check_memory()
        assert kind is ObservedKind.MEMORY_REMOVE
        assert changes

    def test_restore_memory(self, quiet_sut):
        observer = SutObserver(quiet_sut)
        attack(quiet_sut, bytes([0x01, 0x0D, LOCK_NODE_ID, 0x03]))
        observer.restore_memory()
        kind, _ = observer.check_memory()
        assert kind is None
        assert LOCK_NODE_ID in quiet_sut.controller.nvm

    def test_detects_host_states(self, quiet_sut):
        observer = SutObserver(quiet_sut)
        assert observer.check_host() is None
        attack(quiet_sut, bytes([0x9F, 0x01]))
        assert observer.check_host() is ObservedKind.HOST_CRASH
        observer.restart_host()
        assert observer.check_host() is None

    def test_power_cycle_advances_clock(self, quiet_sut):
        observer = SutObserver(quiet_sut, recovery_time=2.0)
        attack(quiet_sut, bytes([0x5A, 0x01]))
        before = quiet_sut.clock.now
        observer.power_cycle()
        assert quiet_sut.clock.now == pytest.approx(before + 2.0)
        assert not quiet_sut.controller.hung

    def test_rebaseline(self, quiet_sut):
        observer = SutObserver(quiet_sut)
        attack(quiet_sut, bytes([0x01, 0x0D, LOCK_NODE_ID, 0x03]))
        observer.rebaseline()
        kind, _ = observer.check_memory()
        assert kind is None


class TestBugLog:
    def make_record(self, i=0, payload=b"\x5a\x01"):
        return BugRecord.from_payload(
            timestamp=1.5 + i, packet_no=10 + i, payload=payload,
            observed=ObservedKind.HANG,
        )

    def test_from_payload_fields(self):
        record = self.make_record()
        assert record.cmdcl == 0x5A
        assert record.cmd == 0x01
        assert record.payload == b"\x5a\x01"
        assert record.observed_kind is ObservedKind.HANG

    def test_short_payload_fields(self):
        record = BugRecord.from_payload(0.0, 1, b"\x5a", ObservedKind.HANG)
        assert record.cmd is None

    def test_coarse_groups_dedup(self):
        log = BugLog()
        for i in range(5):
            log.add(self.make_record(i))
        log.add(self.make_record(9, payload=b"\x59\x03\x00\x01"))
        assert len(log) == 6
        assert len(log.coarse_groups()) == 2

    def test_first_record(self):
        log = BugLog()
        for i in range(3):
            log.add(self.make_record(i))
        first = log.first_record(0x5A, 0x01, "hang")
        assert first.packet_no == 10
        assert log.first_record(0x20, 0x01, "hang") is None

    def test_save_load_roundtrip(self, tmp_path):
        log = BugLog()
        log.add(self.make_record(0))
        log.add(self.make_record(1, payload=b"\x01\x0d\x02\x03"))
        path = tmp_path / "bugs.jsonl"
        log.save(path)
        loaded = BugLog.load(path)
        assert loaded.records() == log.records()

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "bugs.jsonl"
        log = BugLog([self.make_record()])
        log.save(path)
        path.write_text(path.read_text() + "\n\n")
        assert len(BugLog.load(path)) == 1
