"""Property suite for the job-service protocol layer (~300 seeded cases).

Everything here is pure protocol — codecs, ids, queue, checkpoint — so
hundreds of cases run in well under a second; no campaign is ever
executed.  The properties:

* **wire fixpoint** — ``jobspec_from_wire(jobspec_to_wire(s)) == s`` and
  the serialised text is a fixpoint of one more round trip (same for
  :class:`JobStatus`);
* **content-addressed identity** — equal specs share a job id, the
  seeded corpus of distinct specs gets distinct ids, and duplicate
  submission (including threaded) creates exactly one job;
* **queue-order determinism** — sequence tickets are a permutation of
  ``0..n-1`` and ``next_queued`` walks them in order, however many
  threads raced on submission;
* **checkpoint prefix stability** — every durable prefix of the log
  loads back verbatim, a torn/corrupt tail truncates cleanly at the
  damage, and replay folds records into per-job state last-wins;
* **wire-version rejection** — every decoder distinguishes newer /
  missing / stale versions structurally.

The seed-0 corner of all of this is pinned byte-for-byte in
``tests/data/serve_golden.json``; regenerate after an intentional
protocol change with::

    PYTHONPATH=src:tests python -c \
        "import test_serve_properties as t; t.write_golden()"
"""

import hashlib
import json
import random
import threading
from pathlib import Path

import pytest

from repro.core.resultio import (
    WIRE_VERSION,
    WireVersionError,
    campaign_from_wire,
    dumps_wire,
    jobspec_from_wire,
    jobspec_to_wire,
    jobstatus_from_wire,
    jobstatus_to_wire,
    session_from_wire,
    vfuzz_from_wire,
)
from repro.core.session import FLOWS
from repro.serve.checkpoint import (
    done_record,
    encode_line,
    job_record,
    load_checkpoint,
    replay_checkpoint,
    unit_record,
)
from repro.serve.jobs import JobQueue
from repro.serve.protocol import (
    JOB_DONE,
    JOB_KINDS,
    JOB_STATES,
    JobSpec,
    JobStatus,
    SpecError,
    job_id_for,
    spec_key,
    valid_transition,
    validate_spec,
)
from repro.simulator.testbed import CONTROLLER_IDS

GOLDEN_PATH = Path(__file__).resolve().parent / "data" / "serve_golden.json"
SCHEMA = "zcover.serve-golden/v1"

N_SPECS = 120
N_STATUSES = 60
N_CHECKPOINTS = 40


def random_spec(rng):
    """One valid random spec (the generator behind most properties)."""
    kind = rng.choice(JOB_KINDS)
    flows = ()
    fault_plan = None
    if kind == "sessions":
        count = rng.randrange(0, len(FLOWS) + 1)
        flows = tuple(sorted(rng.sample(FLOWS, count)))
    else:
        fault_plan = rng.choice((None, "canonical", "lossy", "flaky"))
    if kind == "chaos" and fault_plan is None:
        fault_plan = "canonical"
    return JobSpec(
        kind=kind,
        device=rng.choice(CONTROLLER_IDS),
        mode=rng.choice(("full", "beta", "gamma")),
        seed=rng.randrange(0, 10_000),
        trials=rng.choice((None, 1, 2, 5, 24)),
        hours=rng.choice((0.05, 0.5, 1.0, 24.0)),
        scheduler=rng.choice(("static", "coverage")),
        fault_plan=fault_plan,
        flows=flows,
    )


def spec_corpus(seed=0, count=N_SPECS):
    """The seeded spec corpus shared by several properties."""
    rng = random.Random(seed)
    return [random_spec(rng) for _ in range(count)]


def random_status(rng):
    """One random (not necessarily reachable) status for codec testing."""
    counters = {
        f"c.{rng.randrange(100)}": rng.randrange(1_000_000)
        for _ in range(rng.randrange(0, 6))
    }
    return JobStatus(
        job_id=f"job-{rng.randrange(2**32):08x}",
        state=rng.choice(JOB_STATES),
        kind=rng.choice(JOB_KINDS),
        device=rng.choice(CONTROLLER_IDS),
        seed=rng.randrange(0, 10_000),
        sequence=rng.randrange(0, 1_000),
        units_total=rng.randrange(0, 50),
        units_done=rng.randrange(0, 50),
        error=rng.choice(("", "CampaignError: boom")),
        counters=counters,
    )


class TestSpecCodec:
    def test_round_trip_is_identity(self):
        for spec in spec_corpus():
            assert jobspec_from_wire(jobspec_to_wire(spec)) == spec

    def test_serialised_text_is_a_fixpoint(self):
        for spec in spec_corpus(seed=1):
            text = dumps_wire(jobspec_to_wire(spec))
            again = dumps_wire(jobspec_to_wire(jobspec_from_wire(json.loads(text))))
            assert again == text

    def test_corpus_is_valid(self):
        for spec in spec_corpus(seed=2):
            validate_spec(spec)  # must not raise

    def test_status_round_trip_is_identity(self):
        rng = random.Random(3)
        for _ in range(N_STATUSES):
            status = random_status(rng)
            assert jobstatus_from_wire(jobstatus_to_wire(status)) == status


class TestJobIdentity:
    def test_equal_specs_share_an_id(self):
        for spec in spec_corpus(seed=4, count=40):
            clone = JobSpec(**{
                "kind": spec.kind,
                "device": spec.device,
                "mode": spec.mode,
                "seed": spec.seed,
                "trials": spec.trials,
                "hours": spec.hours,
                "scheduler": spec.scheduler,
                "fault_plan": spec.fault_plan,
                "flows": tuple(spec.flows),
            })
            assert job_id_for(clone) == job_id_for(spec)

    def test_distinct_specs_get_distinct_ids(self):
        corpus = {spec_key(spec): spec for spec in spec_corpus(seed=5)}
        ids = {job_id_for(spec) for spec in corpus.values()}
        assert len(ids) == len(corpus)

    def test_duplicate_submission_creates_one_job(self):
        queue = JobQueue()
        spec = spec_corpus(seed=6, count=1)[0]
        first, created_first = queue.submit(spec)
        second, created_second = queue.submit(spec)
        assert created_first and not created_second
        assert second is first
        assert len(queue.all_records()) == 1


class TestQueueOrder:
    def test_tickets_are_a_permutation_in_arrival_order(self):
        queue = JobQueue()
        corpus = {spec_key(s): s for s in spec_corpus(seed=7)}.values()
        records = [queue.submit(spec)[0] for spec in corpus]
        assert [r.sequence for r in records] == list(range(len(records)))
        assert queue.all_records() == records

    def test_next_queued_walks_ticket_order(self):
        queue = JobQueue()
        corpus = list({spec_key(s): s for s in spec_corpus(seed=8, count=20)}.values())
        for spec in corpus:
            queue.submit(spec)
        drained = []
        while True:
            record = queue.next_queued()
            if record is None:
                break
            record.advance("running")
            record.advance("done")
            drained.append(record.sequence)
        assert drained == list(range(len(corpus)))

    def test_threaded_submission_is_deterministic_per_spec(self):
        """However threads race, each distinct spec gets exactly one job
        and tickets still form a permutation of 0..n-1."""
        queue = JobQueue()
        corpus = list({spec_key(s): s for s in spec_corpus(seed=9, count=30)}.values())
        created_flags = []

        def submit_all(specs):
            for spec in specs:
                created_flags.append(queue.submit(spec)[1])

        threads = [
            threading.Thread(target=submit_all, args=(corpus,)) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = queue.all_records()
        assert len(records) == len(corpus)
        assert sum(created_flags) == len(corpus)
        assert sorted(r.sequence for r in records) == list(range(len(corpus)))

    def test_state_machine_rejects_illegal_transitions(self):
        assert valid_transition("queued", "running")
        assert valid_transition("running", "queued")  # drain re-queues
        assert not valid_transition("queued", "done")
        assert not valid_transition("done", "running")
        assert not valid_transition("failed", "queued")


class TestSpecValidation:
    @pytest.mark.parametrize(
        "spec, field",
        [
            (JobSpec(kind="nope"), "kind"),
            (JobSpec(device="D99"), "device"),
            (JobSpec(mode="FULL"), "mode"),
            (JobSpec(seed=True), "seed"),
            (JobSpec(trials=0), "trials"),
            (JobSpec(hours=0.0), "hours"),
            (JobSpec(scheduler="greedy"), "scheduler"),
            (JobSpec(fault_plan="/etc/passwd"), "fault_plan"),
            (JobSpec(kind="chaos"), "fault_plan"),
            (JobSpec(kind="trials", flows=("inclusion",)), "flows"),
            (JobSpec(kind="sessions", flows=("warp",)), "flows"),
            (JobSpec(kind="sessions", flows=("s0", "s0")), "flows"),
        ],
    )
    def test_each_field_rejects_structurally(self, spec, field):
        with pytest.raises(SpecError) as excinfo:
            validate_spec(spec)
        assert excinfo.value.field == field
        assert excinfo.value.reason


def checkpoint_records(rng):
    """A random but well-formed record sequence for one or two jobs."""
    records = []
    for job_index in range(rng.randrange(1, 3)):
        job_id = f"job-{rng.randrange(2**32):08x}"
        spec = random_spec(rng)
        records.append(job_record(job_id, job_index, jobspec_to_wire(spec)))
        for unit_index in range(rng.randrange(0, 4)):
            records.append(
                unit_record(
                    job_id,
                    unit_index,
                    rng.randrange(1, 3),
                    {"wire_version": WIRE_VERSION, "blob": rng.randrange(1000)},
                )
            )
        if rng.random() < 0.5:
            records.append(done_record(job_id, JOB_DONE))
    return records


class TestCheckpoint:
    def test_every_prefix_loads_back_verbatim(self, tmp_path):
        rng = random.Random(10)
        for case in range(N_CHECKPOINTS):
            records = checkpoint_records(rng)
            path = tmp_path / f"prefix-{case}.ckpt"
            text = "".join(encode_line(r) + "\n" for r in records)
            for cut in range(len(records) + 1):
                path.write_text(
                    "".join(encode_line(r) + "\n" for r in records[:cut])
                )
                assert load_checkpoint(str(path)) == records[:cut]
            path.write_text(text)
            assert load_checkpoint(str(path)) == records

    def test_torn_tail_truncates_at_the_damage(self, tmp_path):
        rng = random.Random(11)
        records = checkpoint_records(rng)
        while len(records) < 3:
            records = checkpoint_records(rng)
        path = tmp_path / "torn.ckpt"
        lines = [encode_line(r) for r in records]
        # a crash mid-append: the last line is half written
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        assert load_checkpoint(str(path)) == records[:-1]

    def test_corrupt_middle_line_stops_the_prefix(self, tmp_path):
        rng = random.Random(12)
        records = checkpoint_records(rng)
        while len(records) < 3:
            records = checkpoint_records(rng)
        path = tmp_path / "corrupt.ckpt"
        lines = [encode_line(r) for r in records]
        wrapper = json.loads(lines[1])
        wrapper["crc"] ^= 1  # bit-flip the CRC key: the record no longer matches
        lines[1] = json.dumps(wrapper, sort_keys=True, separators=(",", ":"))
        path.write_text("".join(line + "\n" for line in lines))
        assert load_checkpoint(str(path)) == records[:1]

    def test_missing_file_is_an_empty_checkpoint(self, tmp_path):
        assert load_checkpoint(str(tmp_path / "absent.ckpt")) == []

    def test_replay_folds_units_last_wins(self):
        spec_wire = jobspec_to_wire(JobSpec())
        records = [
            job_record("job-1", 0, spec_wire),
            unit_record("job-1", 0, 1, {"v": 1}),
            unit_record("job-1", 0, 2, {"v": 2}),  # duplicate index: last wins
            unit_record("job-1", 1, 1, {"v": 3}),
            unit_record("job-9", 0, 1, {"v": 4}),  # unknown job id: ignored
            job_record("job-1", 0, spec_wire),  # duplicate job: first wins
            done_record("job-1", JOB_DONE),
        ]
        replayed = replay_checkpoint(records)
        assert [entry.job_id for entry in replayed] == ["job-1"]
        entry = replayed[0]
        assert entry.units == {0: (2, {"v": 2}), 1: (1, {"v": 3})}
        assert entry.final_state == JOB_DONE


class TestWireVersionRejection:
    @pytest.mark.parametrize(
        "decoder",
        [campaign_from_wire, vfuzz_from_wire, session_from_wire, jobspec_from_wire],
        ids=["campaign", "vfuzz", "session", "jobspec"],
    )
    def test_newer_missing_and_stale_all_reject(self, decoder):
        for found in (WIRE_VERSION + 1, WIRE_VERSION + 7, None, 1):
            payload = {} if found is None else {"wire_version": found}
            with pytest.raises(WireVersionError) as excinfo:
                decoder(payload)
            assert excinfo.value.found == found
            assert excinfo.value.expected == WIRE_VERSION
            if isinstance(found, int) and found > WIRE_VERSION:
                assert "NEWER" in str(excinfo.value)


# -- the seed-0 golden ---------------------------------------------------------

GOLDEN_SPECS = (
    JobSpec(kind="trials", device="D1", mode="full", seed=0, trials=2, hours=0.05),
    JobSpec(kind="sessions", device="D1", seed=0, trials=6, flows=("inclusion",)),
    JobSpec(
        kind="chaos",
        device="D2",
        mode="beta",
        seed=0,
        trials=1,
        hours=0.05,
        fault_plan="canonical",
    ),
)


def build_golden_document():
    """The seed-0 protocol pin: spec wires, job ids, checkpoint lines,
    and the SHA-256 of the first golden spec's oracle result document."""
    from repro.serve.results import direct_document, dumps_result_document

    corpus = spec_corpus(seed=0, count=20)
    oracle = dumps_result_document(direct_document(GOLDEN_SPECS[0]))
    sample = job_record(
        job_id_for(GOLDEN_SPECS[0]), 0, jobspec_to_wire(GOLDEN_SPECS[0])
    )
    return {
        "schema": SCHEMA,
        "specs": [
            {
                "job_id": job_id_for(spec),
                "key": spec_key(spec),
                "wire": jobspec_to_wire(spec),
            }
            for spec in GOLDEN_SPECS
        ],
        "corpus_job_ids": [job_id_for(spec) for spec in corpus],
        "checkpoint_lines": [
            encode_line(sample),
            encode_line(unit_record("job-0000abcd", 3, 2, {"wire_version": WIRE_VERSION})),
            encode_line(done_record("job-0000abcd", JOB_DONE)),
        ],
        "oracle_sha256": hashlib.sha256(oracle.encode("utf-8")).hexdigest(),
        "wire_version": WIRE_VERSION,
    }


def build_golden_text():
    """Canonical serialisation of the golden document."""
    return json.dumps(build_golden_document(), sort_keys=True, indent=1) + "\n"


def write_golden():
    """Regenerate the golden file through the exact path the test uses."""
    GOLDEN_PATH.write_text(build_golden_text())


class TestGolden:
    def test_seed_zero_protocol_bytes_are_pinned(self):
        assert GOLDEN_PATH.exists(), "run write_golden() to create the golden file"
        assert build_golden_text() == GOLDEN_PATH.read_text()
