"""Property suite for the session fuzzer's determinism contract.

~500 seeded cases over the five properties ISSUE 8 names:

* **schedule purity** — a :class:`SessionSchedule` is a pure function of
  ``(flow, plan, seed)``: two independent compilations describe and draw
  identically;
* **horizon-prefix stability** — trial *t* is the same whether compiled
  alone or as part of any longer horizon;
* **wire round-trip fixpoint** — ``session_from_wire(session_to_wire(r))
  == r`` and re-encoding is byte-stable;
* **serial vs workers byte-identity** — ``run_sessions(workers=2)``
  produces the same wire bytes as ``workers=1``;
* **state-coverage merge commutativity** — snapshots carrying the
  ``flow@state>mark`` bitmap merge the same in any order/grouping.
"""

import random

import pytest

from repro.core.resultio import dumps_wire, session_from_wire, session_to_wire
from repro.core.session import (
    FLOWS,
    SessionPlan,
    SessionSchedule,
    apply_ops,
    evaluate_trace,
    merge_session_results,
    run_session_flow,
    run_sessions,
    session_plan_with_trials,
)
from repro.obs.metrics import (
    MetricsCollector,
    merge_all,
    merge_snapshots,
    state_coverage_key,
)

#: Small plan keeping the ~300 engine runs of this suite fast.
FAST_PLAN = SessionPlan(name="fast", trials=8, batch_trials=3)

SEEDS_20 = range(20)
SEEDS_15 = range(15)
SEEDS_8 = range(8)


def _plan_for(seed: int) -> SessionPlan:
    """A seed-varied plan so purity is tested across plan shapes too."""
    if seed % 3 == 0:
        return FAST_PLAN
    if seed % 3 == 1:
        return SessionPlan(name="narrow", trials=6, min_ops=2, max_ops=4)
    return SessionPlan(
        name="heavy",
        trials=6,
        weights=(("replay", 4), ("mutate", 4), ("drop", 1)),
        exploit_boost=2,
    )


# -- schedule compile purity ---------------------------------------------------


class TestSchedulePurity:
    @pytest.mark.parametrize("flow", FLOWS)
    @pytest.mark.parametrize("seed", SEEDS_20)
    def test_two_compilations_describe_identically(self, flow, seed):
        plan = _plan_for(seed)
        first = SessionSchedule(flow, plan, seed).describe(trials=10)
        second = SessionSchedule(flow, plan, seed).describe(trials=10)
        assert first == second

    @pytest.mark.parametrize("seed", SEEDS_8)
    def test_different_flows_draw_differently(self, seed):
        """The flow name is mixed into every trial label: random trials of
        two flows must not be clones of each other."""
        a = SessionSchedule("s0", FAST_PLAN, seed)
        b = SessionSchedule("ota", FAST_PLAN, seed)
        probe_a, probe_b = len(a.corpus), len(b.corpus)
        assert a.trial_ops(probe_a + 1) != b.trial_ops(probe_b + 1)


# -- horizon-prefix stability --------------------------------------------------


class TestHorizonPrefixStability:
    @pytest.mark.parametrize("flow", FLOWS)
    @pytest.mark.parametrize("seed", SEEDS_15)
    def test_trial_ops_independent_of_horizon(self, flow, seed):
        schedule = SessionSchedule(flow, FAST_PLAN, seed)
        short = [schedule.trial_ops(t) for t in range(6)]
        fresh = SessionSchedule(flow, FAST_PLAN, seed)
        long = [fresh.trial_ops(t) for t in range(12)]
        assert long[:6] == short

    @pytest.mark.parametrize("flow", FLOWS)
    def test_probe_corpus_prefixes_the_schedule(self, flow):
        schedule = SessionSchedule(flow, FAST_PLAN, seed=3)
        for t, (vuln_id, ops) in enumerate(schedule.corpus):
            assert schedule.trial_ops(t) == ops
            assert schedule.trial_label(t) == f"directed:{vuln_id}"
        assert schedule.trial_label(len(schedule.corpus)) is None


# -- mutation + evaluation are pure --------------------------------------------


class TestTraceDeterminism:
    @pytest.mark.parametrize("flow", FLOWS)
    @pytest.mark.parametrize("seed", SEEDS_20)
    def test_apply_and_evaluate_twice_identical(self, flow, seed):
        schedule = SessionSchedule(flow, FAST_PLAN, seed)
        for t in range(4):
            ops = schedule.trial_ops(t)
            events = apply_ops(flow, ops)
            assert events == apply_ops(flow, ops)
            first = evaluate_trace(flow, events)
            second = evaluate_trace(flow, events)
            assert first == second

    @pytest.mark.parametrize("flow", FLOWS)
    @pytest.mark.parametrize("seed", range(10))
    def test_flow_results_are_reproducible(self, flow, seed):
        first = run_session_flow("D1", flow, seed=seed, plan=FAST_PLAN)
        second = run_session_flow("D1", flow, seed=seed, plan=FAST_PLAN)
        assert first == second
        assert dumps_wire(session_to_wire(first)) == dumps_wire(
            session_to_wire(second)
        )


# -- wire round-trip fixpoint --------------------------------------------------


class TestWireRoundTrip:
    @pytest.mark.parametrize("flow", FLOWS)
    @pytest.mark.parametrize("seed", SEEDS_8)
    def test_flow_result_round_trips_lossless(self, flow, seed):
        result = run_session_flow("D2", flow, seed=seed, plan=FAST_PLAN)
        wire = session_to_wire(result)
        restored = session_from_wire(wire)
        assert restored == result
        assert dumps_wire(session_to_wire(restored)) == dumps_wire(wire)

    @pytest.mark.parametrize("seed", range(10))
    def test_merged_result_round_trips_lossless(self, seed):
        result = run_sessions("D1", seed=seed, plan=FAST_PLAN)
        restored = session_from_wire(session_to_wire(result))
        assert restored == result

    def test_stale_wire_version_rejected(self):
        from repro.core.resultio import WIRE_VERSION, WireError

        wire = session_to_wire(run_session_flow("D1", "s0", seed=0, plan=FAST_PLAN))
        wire["wire_version"] = WIRE_VERSION + 1
        with pytest.raises(WireError):
            session_from_wire(wire)


# -- serial vs workers byte-identity -------------------------------------------


class TestSerialVsWorkers:
    def test_workers_2_bytes_match_serial(self):
        plan = session_plan_with_trials(6)
        serial = run_sessions("D1", seed=0, plan=plan, workers=1)
        pooled = run_sessions("D1", seed=0, plan=plan, workers=2)
        assert dumps_wire(session_to_wire(serial)) == dumps_wire(
            session_to_wire(pooled)
        )

    def test_flow_subset_preserves_canonical_order(self):
        result = run_sessions("D1", flows=("ota", "s0"), seed=1, plan=FAST_PLAN)
        assert result.flows == ("ota", "s0")
        assert set(result.trials_by_flow) == {"ota", "s0"}


# -- state-coverage merge commutativity ----------------------------------------


def _state_snapshot(seed: int):
    """A snapshot whose coverage mixes CMDCL×CMD and flow@state keys."""
    rng = random.Random(seed)
    collector = MetricsCollector()
    for _ in range(rng.randrange(1, 12)):
        flow = rng.choice(FLOWS)
        collector.cover_state(flow, f"s{rng.randrange(4)}", f"m{rng.randrange(4)}")
    for _ in range(rng.randrange(0, 6)):
        collector.cover(rng.randrange(256), rng.randrange(256))
    return collector.snapshot()


class TestStateCoverageMerge:
    @pytest.mark.parametrize("seed", range(30))
    def test_merge_is_commutative(self, seed):
        left = _state_snapshot(seed * 2 + 1)
        right = _state_snapshot(seed * 2 + 2)
        assert merge_snapshots(left, right) == merge_snapshots(right, left)

    @pytest.mark.parametrize("seed", range(12))
    def test_merge_grouping_never_matters(self, seed):
        parts = [_state_snapshot(seed * 10 + i) for i in range(4)]
        fold_left = merge_all(parts)
        pairwise = merge_snapshots(
            merge_snapshots(parts[0], parts[1]), merge_snapshots(parts[2], parts[3])
        )
        assert fold_left == pairwise

    @pytest.mark.parametrize("seed", range(12))
    def test_session_metrics_merge_matches_engine_merge(self, seed):
        """Per-flow metrics merged by merge_session_results equal a direct
        snapshot fold, in the canonical flow order."""
        results = [
            run_session_flow("D1", flow, seed=seed, plan=FAST_PLAN)
            for flow in FLOWS[:3]
        ]
        merged = merge_session_results(results)
        assert merged.metrics == merge_all(r.metrics for r in results)

    def test_state_keys_are_disjoint_from_hex_keys(self):
        from repro.obs.metrics import is_state_coverage_key, parse_state_coverage_key

        key = state_coverage_key("ota", "pulling", "transferring")
        assert is_state_coverage_key(key)
        assert parse_state_coverage_key(key) == ("ota", "pulling", "transferring")
        assert not is_state_coverage_key("7a:06")


# -- plan wire -----------------------------------------------------------------


class TestPlanWire:
    @pytest.mark.parametrize("seed", range(9))
    def test_plan_round_trips(self, seed):
        from repro.core.session import dumps_session_plan, loads_session_plan

        plan = _plan_for(seed)
        assert loads_session_plan(dumps_session_plan(plan)) == plan

    def test_invalid_plans_rejected(self):
        from repro.errors import CampaignError

        with pytest.raises(CampaignError):
            SessionPlan(trials=0).validate()
        with pytest.raises(CampaignError):
            SessionPlan(min_ops=3, max_ops=1).validate()
        with pytest.raises(CampaignError):
            SessionPlan(weights=(("warp", 1),)).validate()
